(** Per-connection growable network buffers for the reactor path.

    One {!In.t} + {!Out.t} pair per connection, owned by a single reactor
    shard — nothing synchronizes.  Frames are parsed in place out of the
    receive buffer and responses are encoded straight into the send
    buffer behind a back-patched length prefix, so the steady-state
    request path performs no per-frame allocation for headers or response
    assembly; {!grows} counts buffer reallocations so that claim is
    checkable. *)

val grows : unit -> int
(** Total underlying buffer allocations (initial + growth) across all
    connections since process start.  A warmed-up connection under a
    steady workload must not move this counter. *)

module In : sig
  type t

  val create : ?capacity:int -> ?max_frame:int -> unit -> t
  (** [max_frame] (default 64 MiB, the protocol ceiling) bounds the
      length prefix a peer can make us buffer. *)

  type refill = Filled of int | Eof | Blocked

  val refill : t -> Unix.file_descr -> refill
  (** One [read] into spare buffer space (compacting/growing first as
      needed).  [Blocked] = EAGAIN on a non-blocking socket; read errors
      map to [Eof] (the connection is done either way).

      Compaction moves bytes, so frame positions from {!next_frame} are
      invalidated by the next [refill] — parse and execute everything
      available, then read again. *)

  type frame =
    | Frame of int * int  (** body at [(pos, len)] inside {!contents} *)
    | Partial  (** incomplete; read more *)
    | Bad_frame  (** negative or oversized length prefix: close *)

  val next_frame : t -> frame
  (** Consume the next complete [u32 length | body] frame, returning the
      body's in-buffer position. *)

  val contents : t -> string
  (** The receive buffer viewed as a string for in-place decoding
      ([Protocol.decode_requests_sub]).  Valid only until the next
      {!refill}. *)

  val pending : t -> int
  (** Unconsumed bytes buffered (nonzero after EOF = truncated frame). *)
end

module Out : sig
  type t

  val create : ?budget:int -> unit -> t
  (** [budget] (default 1 MiB) is the backpressure threshold: the reactor
      stops reading a connection whose pending output exceeds it. *)

  val writer : t -> Xutil.Binio.writer
  (** Encode response bodies directly into this. *)

  val begin_frame : t -> int
  (** Reserve a 4-byte length prefix; returns the marker to pass to
      {!end_frame} after encoding the body. *)

  val end_frame : t -> int -> unit

  val pending : t -> int

  val over_budget : t -> bool

  type flush = Drained | Blocked | Closed

  val flush : t -> Unix.file_descr -> flush
  (** Write pending output until drained or the socket blocks.  Write
      errors map to [Closed]. *)
end
