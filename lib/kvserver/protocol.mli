(** Wire protocol (§3, §5).

    Requests and responses travel in {e batches}: "a single client message
    can include many queries", which is what amortizes network cost in the
    paper's benchmarks (batched gets are the difference between memcached
    keeping up and falling behind, §7).

    A frame is [u32 length | varint count | count messages]; each message
    is a tagged body.  Column lists select subsets of a value's columns
    ([[]] = all columns). *)

type request =
  | Get of { key : string; columns : int list }
  | Put of { key : string; columns : string array } (** full-value put *)
  | Put_cols of { key : string; updates : (int * string) list }
  | Remove of string
  | Getrange of { start : string; count : int; columns : int list }
  | Getrange_rev of { start : string; count : int; columns : int list }
      (** descending scan; [start = ""] means from the maximum key *)
  | Stats
      (** telemetry snapshot: live op counters, latency percentiles,
          index/logger metrics, recent slow ops (lib/obs) *)

type response =
  | Value of string array option (** for Get *)
  | Ok_put (** for Put / Put_cols *)
  | Removed of bool (** for Remove *)
  | Range of (string * string array) list (** for Getrange *)
  | Failed of string
  | Stats_reply of Obs.Snapshot.t (** for Stats *)

val encode_requests : request list -> string
(** A complete frame. *)

val encode_responses : response list -> string

val decode_requests : string -> request list
(** Decodes a frame body (without the length prefix).
    @raise Xutil.Binio.Truncated on malformed input. *)

val decode_responses : string -> response list

(** Frame IO helpers over file descriptors (blocking). *)

val write_frame : Unix.file_descr -> string -> unit
(** [write_frame fd body] sends [u32 length | body]. *)

val read_frame : Unix.file_descr -> string option
(** [read_frame fd] reads one frame body; [None] on clean EOF. *)

val pp_request : Format.formatter -> request -> unit
