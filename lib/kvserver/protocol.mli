(** Wire protocol (§3, §5).

    Requests and responses travel in {e batches}: "a single client message
    can include many queries", which is what amortizes network cost in the
    paper's benchmarks (batched gets are the difference between memcached
    keeping up and falling behind, §7).

    A frame is [u32 length | varint count | count messages]; each message
    is a tagged body.  Column lists select subsets of a value's columns
    ([[]] = all columns). *)

type request =
  | Get of { key : string; columns : int list }
  | Put of { key : string; columns : string array } (** full-value put *)
  | Put_cols of { key : string; updates : (int * string) list }
  | Remove of string
  | Getrange of { start : string; count : int; columns : int list }
  | Getrange_rev of { start : string; count : int; columns : int list }
      (** descending scan; [start = ""] means from the maximum key *)
  | Stats
      (** telemetry snapshot: live op counters, latency percentiles,
          index/logger metrics, recent slow ops (lib/obs) *)
  | Snap_open
      (** pin a server-side snapshot (docs/MVCC.md); the reply's id names
          it in the calls below.  The server leases the handle: it
          expires after a TTL of disuse so a dead client can't wedge
          version pruning.  Any snapshot call on the lease renews it. *)
  | Snap_read of { snap : int64; key : string; columns : int list }
  | Snap_range of { snap : int64; start : string; count : int; columns : int list }
      (** consistent ascending scan at the snapshot's cut *)
  | Snap_close of int64
  | Repl_open
      (** subscribe a replica (docs/REPLICATION.md): the primary captures
          every log's tail cursor, {e then} pins a bootstrap snapshot —
          the overlap means a record can arrive twice (snapshot and
          tail), never zero times; the per-key version guard dedups *)
  | Repl_batch of { session : int64; max_bytes : int }
      (** pull the next batch of record frames for the session *)
  | Repl_ack of { session : int64; applied : int64 array }
      (** report the replica's per-shard applied version clock; lets the
          primary trim its tail retention and report lag *)
  | Repl_status (** replication role/horizon/lag (both roles answer) *)
  | Repl_promote
      (** seal a replica's tail and flip it to primary (writes accepted
          after the reply) *)
  | Repl_read of { key : string; columns : int list; floor : int64 }
      (** bounded-staleness read: answered only if the owning shard's
          applied clock is [>= floor], else {!Repl_stale} *)

(** Where a {!Repl_records} batch came from: the bootstrap snapshot feed,
    the live log tail, or [Repl_restart] — the primary evicted frames the
    session had not consumed (or restarted); the replica must rebuild
    from a fresh subscription. *)
type repl_phase = Repl_snapshot | Repl_tail | Repl_restart

type repl_peer = {
  peer_session : int64;
  peer_lag : int; (** retained records past the peer's cursor, all logs *)
  peer_applied : int64 array; (** per-shard clock from the peer's last ack *)
}

type repl_status = {
  repl_role : string; (** "primary" | "replica" *)
  repl_applied : int64 array; (** this node's per-shard version clock *)
  repl_horizon : int array; (** per-log shipping horizon (next tail seq) *)
  repl_retained : int; (** bytes retained across tail rings *)
  repl_peers : repl_peer list; (** subscribed replicas (primary only) *)
}

(** Why a snapshot id stopped working: [Snap_expired] — the lease existed
    and timed out (reopen and retry); [Snap_unknown] — never granted by
    this server process, notably any id from before a restart (snapshots
    do not survive restarts: the client gets this typed error, never a
    torn cut). *)
type snap_error = Snap_unknown | Snap_expired

val snap_error_to_string : snap_error -> string

type response =
  | Value of string array option (** for Get and Snap_read *)
  | Ok_put (** for Put / Put_cols *)
  | Removed of bool (** for Remove *)
  | Range of (string * string array) list (** for Getrange and Snap_range *)
  | Failed of string
  | Stats_reply of Obs.Snapshot.t (** for Stats *)
  | Snap_opened of int64 (** for Snap_open *)
  | Snap_closed (** for Snap_close *)
  | Snap_failed of snap_error (** for any Snap_* call on a dead id *)
  | Repl_opened of { session : int64; versions : int64 array }
      (** session id + the pinned bootstrap snapshot's per-shard cut *)
  | Repl_records of { phase : repl_phase; frames : string list; done_ : bool }
      (** [frames] are {!Persist.Logrec} frames with their CRC framing
          intact — the replica re-verifies each before applying.
          [done_] in the snapshot phase marks bootstrap complete. *)
  | Repl_acked
  | Repl_status_reply of repl_status
  | Repl_promoted of { versions : int64 array } (** adopted per-shard clock *)
  | Repl_stale of { applied : int64 }
      (** the shard's applied clock was below the requested floor *)

val encode_requests : request list -> string
(** A complete frame. *)

val encode_responses : response list -> string

val decode_requests : string -> request list
(** Decodes a frame body (without the length prefix).
    @raise Xutil.Binio.Truncated on malformed input. *)

val decode_responses : string -> response list

val encode_responses_into : Xutil.Binio.writer -> response list -> unit
(** Encode a response batch body into an existing writer — the reactor's
    per-connection output buffer — instead of allocating a fresh string
    per frame.  The caller writes the length prefix itself (reserve 4
    bytes, encode, {!Xutil.Binio.patch_u32}). *)

val decode_requests_sub : string -> pos:int -> len:int -> request list
(** [decode_requests_sub buf ~pos ~len] decodes a frame body sitting at
    [\[pos, pos+len)] inside a larger receive buffer, in place.
    @raise Xutil.Binio.Truncated if the body is malformed or its encoding
    strays past [len] (e.g. into the next pipelined frame). *)

(** Frame IO helpers over file descriptors (blocking). *)

val write_frame : Unix.file_descr -> string -> unit
(** [write_frame fd body] sends [u32 length | body]. *)

val write_frames : Unix.file_descr -> string list -> unit
(** Send several frames with one coalesced write — a pipelining client's
    burst becomes one syscall (and, with TCP_NODELAY, one packet instead
    of one per frame). *)

val read_frame : Unix.file_descr -> string option
(** [read_frame fd] reads one frame body; [None] on clean EOF. *)

val pp_request : Format.formatter -> request -> unit
