(** Wire protocol (§3, §5).

    Requests and responses travel in {e batches}: "a single client message
    can include many queries", which is what amortizes network cost in the
    paper's benchmarks (batched gets are the difference between memcached
    keeping up and falling behind, §7).

    A frame is [u32 length | varint count | count messages]; each message
    is a tagged body.  Column lists select subsets of a value's columns
    ([[]] = all columns). *)

type request =
  | Get of { key : string; columns : int list }
  | Put of { key : string; columns : string array } (** full-value put *)
  | Put_cols of { key : string; updates : (int * string) list }
  | Remove of string
  | Getrange of { start : string; count : int; columns : int list }
  | Getrange_rev of { start : string; count : int; columns : int list }
      (** descending scan; [start = ""] means from the maximum key *)
  | Stats
      (** telemetry snapshot: live op counters, latency percentiles,
          index/logger metrics, recent slow ops (lib/obs) *)
  | Snap_open
      (** pin a server-side snapshot (docs/MVCC.md); the reply's id names
          it in the calls below.  The server leases the handle: it
          expires after a TTL of disuse so a dead client can't wedge
          version pruning.  Any snapshot call on the lease renews it. *)
  | Snap_read of { snap : int64; key : string; columns : int list }
  | Snap_range of { snap : int64; start : string; count : int; columns : int list }
      (** consistent ascending scan at the snapshot's cut *)
  | Snap_close of int64

(** Why a snapshot id stopped working: [Snap_expired] — the lease existed
    and timed out (reopen and retry); [Snap_unknown] — never granted by
    this server process, notably any id from before a restart (snapshots
    do not survive restarts: the client gets this typed error, never a
    torn cut). *)
type snap_error = Snap_unknown | Snap_expired

val snap_error_to_string : snap_error -> string

type response =
  | Value of string array option (** for Get and Snap_read *)
  | Ok_put (** for Put / Put_cols *)
  | Removed of bool (** for Remove *)
  | Range of (string * string array) list (** for Getrange and Snap_range *)
  | Failed of string
  | Stats_reply of Obs.Snapshot.t (** for Stats *)
  | Snap_opened of int64 (** for Snap_open *)
  | Snap_closed (** for Snap_close *)
  | Snap_failed of snap_error (** for any Snap_* call on a dead id *)

val encode_requests : request list -> string
(** A complete frame. *)

val encode_responses : response list -> string

val decode_requests : string -> request list
(** Decodes a frame body (without the length prefix).
    @raise Xutil.Binio.Truncated on malformed input. *)

val decode_responses : string -> response list

val encode_responses_into : Xutil.Binio.writer -> response list -> unit
(** Encode a response batch body into an existing writer — the reactor's
    per-connection output buffer — instead of allocating a fresh string
    per frame.  The caller writes the length prefix itself (reserve 4
    bytes, encode, {!Xutil.Binio.patch_u32}). *)

val decode_requests_sub : string -> pos:int -> len:int -> request list
(** [decode_requests_sub buf ~pos ~len] decodes a frame body sitting at
    [\[pos, pos+len)] inside a larger receive buffer, in place.
    @raise Xutil.Binio.Truncated if the body is malformed or its encoding
    strays past [len] (e.g. into the next pipelined frame). *)

(** Frame IO helpers over file descriptors (blocking). *)

val write_frame : Unix.file_descr -> string -> unit
(** [write_frame fd body] sends [u32 length | body]. *)

val write_frames : Unix.file_descr -> string list -> unit
(** Send several frames with one coalesced write — a pipelining client's
    burst becomes one syscall (and, with TCP_NODELAY, one packet instead
    of one per frame). *)

val read_frame : Unix.file_descr -> string option
(** [read_frame fd] reads one frame body; [None] on clean EOF. *)

val pp_request : Format.formatter -> request -> unit
