(** Sharded serving tier: N independent {!Kvstore.Store} instances behind
    a keyspace router, with an optional hot-key mitigation layer.

    Routing is hash-partitioned by default (stable FNV-1a, so the same
    key maps to the same shard across runs and router instances with the
    same shard count) with pluggable range partitioning.  Point ops go to
    the owning shard, [multi_get] fans out per shard and re-scatters
    results in request order, and scans run on every shard and k-way
    merge into one globally ordered stream.

    The hot-key layer attacks the weakness Fig 13 exposes in
    hard-partitioned deployments — Zipfian traffic saturating one
    partition while the rest idle: a space-saving sketch samples the get
    stream, the current top-K keys become fill-eligible, and a
    version-validated read cache ({!Hotcache}) serves them without
    touching the owning shard.  Writes invalidate after the shard write
    completes; see docs/SHARDING.md for the full protocol. *)

type concurrency =
  | Concurrent
      (** shards are concurrent Masstrees; the router adds routing only
          (the server daemon's mode) *)
  | Dedicated
      (** §6.6's hard-partitioned model: every shard access serializes on
          a per-shard lock, as if one core served each shard — the
          configuration whose skew collapse the hot-key layer mitigates *)

type partitioning =
  | Hash
  | Range of string array
      (** [boundaries.(i)] is the first key {e not} owned by shard [i]
          (sorted, length [shards - 1]); shard [n-1] owns the tail *)

type hot_config = {
  hot_slots : int; (** cache slots and top-K target *)
  sketch_capacity : int; (** tracked keys in the space-saving sketch *)
  refresh_every : int; (** sketched observations between top-K refreshes *)
  sample : int;
      (** sketch 1 in [sample] gets; [create] rounds it up to a power of
          two (the gate is a mask) *)
}

val default_hot_config : hot_config
(** 1024 slots, 4096-entry sketch, refresh every 1024 sampled
    observations, sample 1-in-16 (the top-K set adapts every ~16k
    gets while a uniform workload pays ~1-2% for the layer). *)

type t

val create :
  ?partitioning:partitioning ->
  ?concurrency:concurrency ->
  ?hot:hot_config ->
  Kvstore.Store.t array ->
  t
(** [create stores] routes over [stores] (hash-partitioned, [Concurrent],
    no hot-key layer unless [hot] is given). *)

val shards : t -> int

val stores : t -> Kvstore.Store.t array
(** The backing shards, e.g. for per-shard checkpoint/recovery. *)

val shard_of : t -> string -> int
(** The shard that owns a key.  Deterministic and stable for a given
    partitioning + shard count. *)

(** {1 Operations}

    Same semantics as the corresponding {!Kvstore.Store} calls; [worker]
    selects the owning shard's update log and the sampling state. *)

val get : ?worker:int -> t -> string -> string array option

val get_columns : ?worker:int -> t -> string -> int list -> string array option

val get_value : t -> string -> Kvstore.Store.value option
(** Always reads through to the shard (never the cache). *)

val put : ?worker:int -> t -> string -> string array -> unit

val put_columns : ?worker:int -> t -> string -> (int * string) list -> unit

val remove : ?worker:int -> t -> string -> bool

(** {1 Replica read offload (docs/REPLICATION.md)}

    An alternative mitigation for the Fig-13 hot-shard collapse: instead
    of caching hot keys in front of the owning partition, fan read
    traffic across log-shipping replicas.  The table holds
    transport-agnostic handles (in-process [Repl.Replica.read] closures,
    or a TCP client's [Repl_read]); {!get_offload} round-robins them and
    falls back to the owning shard when a replica is behind the caller's
    staleness floor or unreachable. *)

type replica_handle = {
  rh_label : string;
  rh_read :
    string ->
    int list ->
    int64 ->
    [ `Value of string array option | `Stale | `Down ];
      (** [rh_read key columns floor]: bounded-staleness read —
          [`Value] only if the replica's applied clock reached [floor]
          ([columns = []] means all). *)
  rh_applied : unit -> int64;  (** the replica's applied version clock. *)
}

val set_replicas : t -> replica_handle list -> unit
(** Install (or replace) the replica table.  Not synchronized with
    in-flight {!get_offload} calls beyond the array swap. *)

val replica_count : t -> int

val get_offload :
  ?worker:int -> ?columns:int list -> ?floor:int64 -> t -> string ->
  string array option
(** Read via the replica table (round-robin), falling back to the owning
    shard on [`Stale]/[`Down] or when no replicas are installed.
    [floor] (default [0L] — any replica state is fresh enough) is the
    client's bounded-staleness cut, e.g. the version clock it last
    observed for read-your-writes. *)

val offload_stats : t -> int * int
(** [(served, fallback)]: offload reads answered by a replica vs routed
    back to the owning shard. *)

val multi_get : ?worker:int -> t -> string array -> string array option array
(** Cache hits answered up front; misses grouped per shard and served by
    that shard's interleaved {!Kvstore.Store.multi_get} wave (§4.8), with
    results scattered back into request order. *)

val getrange :
  t -> start:string -> ?columns:int list -> limit:int ->
  (string -> string array -> unit) -> int
(** Cross-shard merged scan: a k-way merge over per-shard cursors emits
    the globally first [limit] pairs from [start] in key order.  Shards
    are read a bounded chunk at a time and refilled as the merge drains
    them, so transient memory is O(shards * min(limit, 256)) no matter
    how large the client's [limit] is.  Like the single-store scan, not
    atomic w.r.t. concurrent writers. *)

val getrange_rev :
  t -> ?start:string -> ?columns:int list -> limit:int ->
  (string -> string array -> unit) -> int

val cardinal : t -> int

(** {1 Cross-shard snapshots (MVCC; docs/MVCC.md)}

    One call pins a {!Kvstore.Store.Snapshot} on every shard before
    returning, so the tier-wide cut is coordinated: a write acked after
    [open_] returns is invisible through the snapshot on {e every}
    shard.  Reads route by the same partitioning as live ops but bypass
    the hot-key cache (it mirrors live values) and never block writers;
    the merged scan runs over per-shard snapshot cursors, so unlike the
    live {!getrange} it is one consistent view. *)

module Snapshot : sig
  type snap

  val open_ : t -> snap

  val versions : snap -> int64 array
  (** Per-shard pinned versions (shard clocks are independent). *)

  val read : snap -> string -> string array option

  val read_columns : snap -> string -> int list -> string array option

  val getrange :
    snap -> start:string -> ?columns:int list -> limit:int ->
    (string -> string array -> unit) -> int

  val close : snap -> unit
  (** Close every shard's snapshot (idempotent). *)
end

val close : t -> unit

val check : t -> (unit, string) result
(** Deep structural check of every shard (quiescent callers only). *)

val pool_consistency : t -> (unit, string) result
(** Node-arena leak oracle over every shard: runs each store's epoch
    maintenance (draining deferred frees), then requires
    allocs == frees + reachable.  Single-threaded callers only. *)

(** {1 Telemetry} *)

val shard_loads : t -> int array
(** Per-shard count of operations routed past the hot-key cache — the
    load-imbalance signal ([bench shard] compares it against the modeled
    partitioned baseline's counters). *)

val reset_shard_loads : t -> unit

val imbalance_pct : int array -> float
(** [(max - mean) / mean * 100] over per-shard load counts; 0 for a
    perfectly balanced tier. *)

val hot_stats : t -> Hotcache.stats option

val hot_key_count : t -> int
(** Size of the current fill-eligible top-K set. *)

val register_obs : t -> unit
(** Publish gauges on {!Obs.Registry.global}: [shard.shards],
    [shard.cardinal], [shard.load.<i>], [shard.imbalance_pct], and — with
    the hot-key layer — [shard.hot.keys], [shard.hot.hits/misses/fills/
    invalidations] and [shard.hot.hit_rate_pct]. *)
