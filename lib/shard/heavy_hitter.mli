(** Space-saving heavy-hitter sketch (Metwally et al.): tracks at most
    [capacity] candidate keys; any key whose true frequency exceeds
    observed/capacity is guaranteed to be among them.  The router samples
    the get stream into one of these to decide which keys deserve a slot
    in the hot-key cache.

    Not thread-safe — callers serialize access (the router uses a
    try-lock and drops samples under contention). *)

type t

val create : capacity:int -> t

val observe : t -> string -> unit
(** Count one occurrence of the key. *)

val observed : t -> int
(** Total observations since creation (decays do not reset this). *)

val count : t -> string -> (int * int) option
(** [(count, error)] for a tracked key: its true frequency f satisfies
    [count - error <= f <= count]. *)

val top : t -> int -> (string * int) list
(** The [k] highest-count tracked keys, descending. *)

val decay : t -> unit
(** Shrink every count by a quarter (dropping entries that reach zero) so
    the sketch follows the recent mix instead of all of history.  Gentler
    than halving on purpose: the tracked tail reaches ~3x deeper into the
    distribution, at the cost of adapting to a shifted mix over a few more
    decay cycles. *)

val clear : t -> unit
