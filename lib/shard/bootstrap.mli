(** Startup recovery and resharding for a (possibly sharded) data
    directory — the server daemon's boot path, extracted so the
    grow/shrink reshard logic is testable without a process restart.

    Layout: a single-store deployment ([shards = 1]) lives in the data
    dir root; a sharded tier puts shard [i] in [data/shard-<i>/].  Each
    dir holds that incarnation's per-worker [log-*] files and [ckpt-*]
    checkpoint dirs.

    Boot recovers {e every} dir a previous incarnation may have written —
    the live shard dirs, orphan [shard-*] dirs left by a different
    [--shards] setting, and legacy root-dir state when switching a
    single-store deployment to sharded — and migrates all of it through
    the current router so keys re-home under the current partitioning.

    Migration is {b version-aware and logged}
    ({!Kvstore.Store.migrate_put}): every recovered binding (tombstones
    included) is re-applied under its recovered version, so the newest
    copy of a key wins no matter which source dir is migrated first, and
    the fresh logs record the same winner for every later replay.  After
    a group-commit barrier (a marker in every fresh log) the superseded
    sources — orphan dirs, legacy root state, {e and} the old logs and
    checkpoints inside the live shard dirs — are deleted: the fresh logs
    now carry the complete re-homed dataset, and a crash anywhere in the
    deletion leaves only redundant copies that the version guard
    reconciles on the next boot. *)

type t = {
  stores : Kvstore.Store.t array;  (** one per shard, freshly logged *)
  shard_logs : Persist.Logger.t array array;  (** [n_logs] loggers per shard *)
  dirs : string array;  (** shard [i]'s data dir (the root when [shards = 1]) *)
  router : Router.t option;  (** [Some] iff [shards > 1] *)
}

val boot :
  ?log:(string -> unit) ->
  ?hot:Router.hot_config ->
  data_dir:string ->
  shards:int ->
  n_logs:int ->
  unit ->
  (t, string) result
(** Recover, re-home, and reclaim as described above.  [log] receives
    human-readable progress lines; [hot] enables the router's hot-key
    cache ([shards > 1] only).  Returns [Error] if any dir's recovery
    fails (no on-disk state has been deleted in that case). *)

(** {1 Directory helpers (shared with the daemon's checkpoint loop)} *)

val shard_dirs : data_dir:string -> shards:int -> string array

val find_logs : string -> string list
(** [log-*] files directly inside a dir, sorted. *)

val find_checkpoints : string -> string list
(** [ckpt-*] entries directly inside a dir, sorted. *)

val mkdir_p : string -> unit

val rm_rf : string -> unit
