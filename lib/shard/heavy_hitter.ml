(* Space-saving heavy-hitter sketch (Metwally et al.): [capacity] tracked
   entries; a hit on a tracked key increments its count, a hit on an
   untracked key evicts the current minimum and inherits its count as the
   new entry's error bound.  Any key whose true frequency exceeds
   N/capacity is guaranteed to be tracked, which is all the hot-key cache
   needs: the top-K of a Zipfian stream stabilizes within a few thousand
   observations.

   Not thread-safe: the router samples observations into it under a
   try-lock, dropping samples under contention. *)

type entry = { mutable key : string; mutable count : int; mutable err : int }

type t = {
  capacity : int;
  index : (string, entry) Hashtbl.t;
  entries : entry array;
  mutable used : int; (* entries.(0 .. used-1) are live *)
  mutable observed : int;
  (* Lazy min bucket: eviction needs the minimum-count entry, and a naive
     scan is O(capacity) on every tail-key observation — the dominant
     cost under a Zipfian stream.  The minimum count never decreases
     between decays (evictions replace a min entry with count min+1,
     increments only raise counts), so we cache the candidates at the
     current minimum and rescan only when the cache drains; entries whose
     count moved on are dropped on pop.  Amortized near-O(1): each rescan
     refills with every entry sitting at the new minimum, which in a
     tail-heavy stream is most of the sketch. *)
  mutable min_value : int;
  mutable min_bucket : entry list;
}

let create ~capacity =
  let capacity = max 1 capacity in
  {
    capacity;
    index = Hashtbl.create (2 * capacity);
    entries = Array.init capacity (fun _ -> { key = ""; count = 0; err = 0 });
    used = 0;
    observed = 0;
    min_value = 0;
    min_bucket = [];
  }

let observed t = t.observed

let rec min_entry t =
  match t.min_bucket with
  | e :: rest when e.count = t.min_value ->
      t.min_bucket <- rest;
      e
  | _ :: rest ->
      (* stale candidate: its count was bumped since the rescan *)
      t.min_bucket <- rest;
      min_entry t
  | [] ->
      let m = ref t.entries.(0).count in
      for i = 1 to t.used - 1 do
        if t.entries.(i).count < !m then m := t.entries.(i).count
      done;
      t.min_value <- !m;
      let bucket = ref [] in
      for i = 0 to t.used - 1 do
        if t.entries.(i).count = !m then bucket := t.entries.(i) :: !bucket
      done;
      t.min_bucket <- !bucket;
      min_entry t

let observe t key =
  t.observed <- t.observed + 1;
  match Hashtbl.find_opt t.index key with
  | Some e -> e.count <- e.count + 1
  | None ->
      if t.used < t.capacity then begin
        let e = t.entries.(t.used) in
        t.used <- t.used + 1;
        e.key <- key;
        e.count <- 1;
        e.err <- 0;
        Hashtbl.replace t.index key e
      end
      else begin
        (* Evict the minimum; its count becomes the newcomer's error. *)
        let e = min_entry t in
        Hashtbl.remove t.index e.key;
        e.err <- e.count;
        e.count <- e.count + 1;
        e.key <- key;
        Hashtbl.replace t.index key e
      end

let count t key =
  match Hashtbl.find_opt t.index key with Some e -> Some (e.count, e.err) | None -> None

let top t k =
  let live = Array.sub t.entries 0 t.used in
  Array.sort (fun a b -> compare b.count a.count) live;
  let n = min k (Array.length live) in
  List.init n (fun i -> (live.(i).key, live.(i).count))

(* Shrink every count by a quarter so the sketch tracks the recent mix
   rather than all of history; entries decayed to zero are dropped.  The
   gentle factor matters for reach: a key of probability p stabilizes at
   count ~ 4*W*p per window of W observations and survives while
   W*p >~ 1/3, so the tracked tail reaches ~3x deeper into the
   distribution than halving would, at the price of adapting to a shifted
   mix over a few more windows. *)
let decay t =
  let keep = ref 0 in
  for i = 0 to t.used - 1 do
    let e = t.entries.(i) in
    e.count <- e.count - ((e.count + 3) / 4);
    e.err <- e.err - ((e.err + 3) / 4);
    if e.count = 0 then Hashtbl.remove t.index e.key
    else begin
      (* compact live entries to the front *)
      let tgt = t.entries.(!keep) in
      if tgt != e then begin
        let k = tgt.key and c = tgt.count and r = tgt.err in
        tgt.key <- e.key;
        tgt.count <- e.count;
        tgt.err <- e.err;
        e.key <- k;
        e.count <- c;
        e.err <- r
      end;
      Hashtbl.replace t.index tgt.key tgt;
      incr keep
    end
  done;
  t.used <- !keep;
  (* halving can lower the minimum: invalidate the cached bucket *)
  t.min_value <- 0;
  t.min_bucket <- []

let clear t =
  Hashtbl.reset t.index;
  t.used <- 0;
  t.observed <- 0;
  t.min_value <- 0;
  t.min_bucket <- []
