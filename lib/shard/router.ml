(* Keyspace router: N independent stores behind one Store-shaped face.

   Routing is hash-partitioned by default (FNV-1a, stable across runs and
   router instances) with pluggable range partitioning.  Point ops go to
   the owning shard; multi_get fans out per shard and re-scatters results
   in request order; scans run on every shard and k-way merge into one
   ordered stream.

   The optional hot-key layer (Fig 13's skew mitigation) sits in front of
   the shards: a space-saving sketch samples the get stream, the top-K
   keys become fill-eligible, and a version-validated read cache
   (Hotcache) serves them without touching — or locking — the owning
   shard.  Writes go to the shard first and invalidate second, so a
   cached entry can never outlive the value it mirrors. *)

type concurrency =
  | Concurrent
      (* shards are full concurrent Masstrees; the router adds routing only *)
  | Dedicated
      (* one core per shard (§6.6 hard-partitioned model): every shard
         access serializes on that shard's lock, so a hot shard saturates
         exactly as a dedicated-core deployment would *)

type partitioning =
  | Hash
  | Range of string array
      (* boundaries.(i) = first key NOT owned by shard i; sorted, length n-1 *)

type hot_config = {
  hot_slots : int;
  sketch_capacity : int;
  refresh_every : int;
  sample : int;
}

(* sample 1-in-16 keeps the sketch off the common path (a uniform
   workload pays ~1-2% for the hot-key layer it never benefits from);
   1024 sampled observations between refreshes means the top-K set
   adapts every ~16k gets. *)
let default_hot_config =
  { hot_slots = 1024; sketch_capacity = 4096; refresh_every = 1024; sample = 16 }

type hot = {
  cache : Hotcache.t;
  sketch : Heavy_hitter.t;
  sketch_lock : Xutil.Spinlock.t;
  (* Hot-set membership as a flat byte-fingerprint table:
     fp.[h land fp_mask] holds one hash-derived byte of a current top-K
     key ('\000' = empty).  Bytes keep the whole table L2-resident (8x
     hot_slots is 128KB at the default), so the gate costs ~nothing —
     that is what lets every get consult it FIRST and lets cold keys skip
     the cache entirely, paying only hash + tick + this read for the
     whole hot-key layer.  A 1-in-256 false positive admits a cold key to
     probe-and-fill; with 4x slots over top-K the resulting churn is
     noise.  Swapped wholesale at refresh; readers seeing the old table
     briefly is harmless (the gate affects only which keys get cached,
     never coherence — invalidation doesn't consult it). *)
  fp : Bytes.t Atomic.t;
  fp_mask : int;
  config : hot_config;
  mutable next_refresh : int;
  ticks : int ref array; (* per-worker sampling counters; races are benign *)
}

(* A subscribed replica as the router sees it: transport-agnostic
   closures (in-process [Repl.Replica.read], or a TCP client's
   [Repl_read]).  [rh_read] answers [`Stale] when the replica's applied
   clock is below the caller's floor and [`Down] on transport failure —
   both fall back to the owning shard. *)
type replica_handle = {
  rh_label : string;
  rh_read :
    string ->
    int list ->
    int64 ->
    [ `Value of string array option | `Stale | `Down ];
  rh_applied : unit -> int64;
}

type t = {
  stores : Kvstore.Store.t array;
  partitioning : partitioning;
  locks : Xutil.Spinlock.t array; (* used only in Dedicated mode *)
  concurrency : concurrency;
  hot : hot option;
  loads : int Atomic.t array; (* shard accesses routed past the cache *)
  mutable replicas : replica_handle array;
  rr_cursor : int Atomic.t; (* round-robin over replicas *)
  offload_served : int Atomic.t;
  offload_fallback : int Atomic.t;
}

(* One hash per key per operation: Hotcache's FNV-1a doubles as the
   hash-partition routing hash and the fingerprint, so the hot path
   hashes once and reuses the value everywhere. *)
let fnv1a = Hotcache.hash

(* the fingerprint byte comes from hash bits the slot index doesn't use;
   0 is reserved for "empty" *)
let fp_byte hv =
  let b = (hv lsr 24) land 0xff in
  if b = 0 then 1 else b

let rec pow2_above n k = if k >= n then k else pow2_above n (k * 2)

let create ?(partitioning = Hash) ?(concurrency = Concurrent) ?hot stores =
  let n = Array.length stores in
  assert (n > 0);
  (match partitioning with
  | Hash -> ()
  | Range bs ->
      assert (Array.length bs = n - 1);
      Array.iteri (fun i b -> if i > 0 then assert (String.compare bs.(i - 1) b <= 0)) bs);
  let hot =
    Option.map
      (fun config ->
        (* note_get's 1-in-[sample] gate is a power-of-two mask; round a
           caller's rate up so e.g. sample=10 means 1-in-16, not the
           silent 1-in-4 that mask 0b1001 would give *)
        let config = { config with sample = pow2_above (max 1 config.sample) 1 } in
        (* 4x slots over the top-K target tames direct-map collisions
           between hot keys; 8x fingerprints keep the gate's false-drop
           rate low.  Both are flat arrays, a few tens of KB. *)
        let fp_len = pow2_above (8 * max 16 config.hot_slots) 16 in
        {
          cache = Hotcache.create ~slots:(4 * config.hot_slots);
          sketch = Heavy_hitter.create ~capacity:config.sketch_capacity;
          sketch_lock = Xutil.Spinlock.create ();
          fp = Atomic.make (Bytes.make fp_len '\000');
          fp_mask = fp_len - 1;
          config;
          next_refresh = config.refresh_every;
          ticks = Array.init 64 (fun _ -> ref 0);
        })
      hot
  in
  {
    stores;
    partitioning;
    locks = Array.init n (fun _ -> Xutil.Spinlock.create ());
    concurrency;
    hot;
    loads = Array.init n (fun _ -> Atomic.make 0);
    replicas = [||];
    rr_cursor = Atomic.make 0;
    offload_served = Atomic.make 0;
    offload_fallback = Atomic.make 0;
  }

let shards t = Array.length t.stores

let stores t = t.stores

(* [hv] = fnv1a key, computed once by the caller on hot paths. *)
let shard_of_h t hv key =
  match t.partitioning with
  | Hash -> hv mod Array.length t.stores
  | Range bs ->
      (* first boundary strictly above [key] names the owner *)
      let lo = ref 0 and hi = ref (Array.length bs) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if String.compare key bs.(mid) < 0 then hi := mid else lo := mid + 1
      done;
      !lo

let shard_of t key = shard_of_h t (fnv1a key) key

let with_shard t s f =
  Atomic.incr t.loads.(s);
  match t.concurrency with
  | Concurrent -> f t.stores.(s)
  | Dedicated -> Xutil.Spinlock.with_lock t.locks.(s) (fun () -> f t.stores.(s))

let shard_loads t = Array.map Atomic.get t.loads

let reset_shard_loads t = Array.iter (fun a -> Atomic.set a 0) t.loads

(* ---- hot-key layer ---- *)

(* Sample roughly 1-in-[sample] gets into the sketch (per-worker tick
   counters, try-lock so a busy sketch just drops the sample), refreshing
   the fill-eligible top-K set every [refresh_every] sketched
   observations. *)
let note_get h ~worker key =
  let tick = h.ticks.(worker land 63) in
  incr tick;
  if !tick land (h.config.sample - 1) = 0 && Xutil.Spinlock.try_lock h.sketch_lock
  then begin
    Heavy_hitter.observe h.sketch key;
    if Heavy_hitter.observed h.sketch >= h.next_refresh then begin
      let top = Heavy_hitter.top h.sketch h.config.hot_slots in
      let fp = Bytes.make (h.fp_mask + 1) '\000' in
      List.iter
        (fun (k, _) ->
          let hv = fnv1a k in
          Bytes.set fp (hv land h.fp_mask) (Char.unsafe_chr (fp_byte hv)))
        top;
      Atomic.set h.fp fp;
      (* age the sketch so the set tracks the current mix *)
      Heavy_hitter.decay h.sketch;
      h.next_refresh <- Heavy_hitter.observed h.sketch + h.config.refresh_every
    end;
    Xutil.Spinlock.unlock h.sketch_lock
  end

let fill_eligible h hv =
  Char.code (Bytes.unsafe_get (Atomic.get h.fp) (hv land h.fp_mask)) = fp_byte hv

(* ---- point operations ---- *)

let project columns full =
  let w = Array.length full in
  Array.of_list (List.map (fun i -> if i >= 0 && i < w then full.(i) else "") columns)

(* Fill-eligible miss path: capture the slot stamp before the shard read
   and publish (columns, version) only if no write intervened. *)
let get_fill t h hv key =
  let st = Hotcache.stamp h.cache hv in
  match with_shard t (shard_of_h t hv key) (fun store -> Kvstore.Store.get_value store key) with
  | None -> None
  | Some v ->
      ignore
        (Hotcache.fill h.cache hv key ~stamp:st ~version:v.Kvstore.Store.version
           v.Kvstore.Store.columns);
      Some v.Kvstore.Store.columns

(* Full-value get through the hot-key layer: hash once, consult the
   L2-resident fingerprint gate first.  Keys outside the hot set skip
   the cache entirely — their only overhead over a plain routed get is
   the hash (shared with routing), a tick, and one byte read.  Keys
   inside it probe the cache and fill on a miss. *)
let get_hot t h ~worker key =
  let hv = fnv1a key in
  note_get h ~worker key;
  if fill_eligible h hv then
    match Hotcache.find h.cache hv key with
    | Some cols -> Some cols
    | None -> get_fill t h hv key
  else with_shard t (shard_of_h t hv key) (fun store -> Kvstore.Store.get store key)

let get ?(worker = 0) t key =
  match t.hot with
  | None -> with_shard t (shard_of t key) (fun store -> Kvstore.Store.get store key)
  | Some h -> get_hot t h ~worker key

let get_columns ?(worker = 0) t key columns =
  match t.hot with
  | None ->
      with_shard t (shard_of t key) (fun store -> Kvstore.Store.get_columns store key columns)
  | Some h -> (
      let hv = fnv1a key in
      note_get h ~worker key;
      if fill_eligible h hv then
        match Hotcache.find h.cache hv key with
        | Some full -> Some (project columns full)
        | None -> Option.map (project columns) (get_fill t h hv key)
      else
        with_shard t (shard_of_h t hv key) (fun store ->
            Kvstore.Store.get_columns store key columns))

let get_value t key =
  with_shard t (shard_of t key) (fun store -> Kvstore.Store.get_value store key)

let write_op t ~worker key op =
  match t.hot with
  | None -> with_shard t (shard_of t key) (fun store -> op store)
  | Some h ->
      let hv = fnv1a key in
      let r = with_shard t (shard_of_h t hv key) (fun store -> op store) in
      Hotcache.invalidate h.cache hv key;
      ignore worker;
      r

let put ?(worker = 0) t key columns =
  write_op t ~worker key (fun store -> Kvstore.Store.put ~worker store key columns)

let put_columns ?(worker = 0) t key updates =
  write_op t ~worker key (fun store -> Kvstore.Store.put_columns ~worker store key updates)

let remove ?(worker = 0) t key =
  write_op t ~worker key (fun store -> Kvstore.Store.remove ~worker store key)

(* ---- replica read offload ---- *)

let set_replicas t handles = t.replicas <- Array.of_list handles

let replica_count t = Array.length t.replicas

(* Bounded-staleness read through the replica table: round-robin a
   replica first (the alternative Fig-13 mitigation — a hot shard's read
   traffic fans across subscribers instead of serializing on the owning
   partition), fall back to the owning shard when the replica is behind
   the caller's floor or unreachable.  [floor = 0L] accepts any replica
   state; a read-your-writes caller passes the version clock it saw. *)
let get_offload ?(worker = 0) ?(columns = []) ?(floor = 0L) t key =
  let primary () =
    match columns with
    | [] -> get ~worker t key
    | cols -> get_columns ~worker t key cols
  in
  let n = Array.length t.replicas in
  if n = 0 then primary ()
  else begin
    let r = t.replicas.((Atomic.fetch_and_add t.rr_cursor 1 land max_int) mod n) in
    match r.rh_read key columns floor with
    | `Value v ->
        Atomic.incr t.offload_served;
        v
    | `Stale | `Down ->
        Atomic.incr t.offload_fallback;
        primary ()
  end

let offload_stats t =
  (Atomic.get t.offload_served, Atomic.get t.offload_fallback)

(* ---- multi_get fan-out ---- *)

let multi_get ?(worker = 0) t keys =
  let n = Array.length keys in
  let results = Array.make n None in
  let nshards = Array.length t.stores in
  (* classify each key: cache hit, fill-eligible miss, or plain miss *)
  let plain = Array.make nshards [] in
  let fills = Array.make nshards [] in
  Array.iteri
    (fun i key ->
      let hv = fnv1a key in
      let s = shard_of_h t hv key in
      match t.hot with
      | None -> plain.(s) <- (i, key) :: plain.(s)
      | Some h -> (
          note_get h ~worker key;
          if fill_eligible h hv then
            match Hotcache.find h.cache hv key with
            | Some cols -> results.(i) <- Some cols
            | None ->
                (* stamp captured now, before any shard read below *)
                fills.(s) <- (i, key, hv, Hotcache.stamp h.cache hv) :: fills.(s)
          else plain.(s) <- (i, key) :: plain.(s)))
    keys;
  for s = 0 to nshards - 1 do
    if plain.(s) <> [] || fills.(s) <> [] then
      with_shard t s (fun store ->
          (match plain.(s) with
          | [] -> ()
          | l ->
              let l = Array.of_list l in
              let ks = Array.map snd l in
              let rs = Kvstore.Store.multi_get store ks in
              Array.iteri (fun j (i, _) -> results.(i) <- rs.(j)) l);
          List.iter
            (fun (i, key, hv, st) ->
              match Kvstore.Store.get_value store key with
              | None -> results.(i) <- None
              | Some v ->
                  (match t.hot with
                  | Some h ->
                      ignore
                        (Hotcache.fill h.cache hv key ~stamp:st
                           ~version:v.Kvstore.Store.version v.Kvstore.Store.columns)
                  | None -> ());
                  results.(i) <- Some v.Kvstore.Store.columns)
            fills.(s))
  done;
  results

(* ---- merged scans ---- *)

(* Per-shard fetch granularity for merged scans.  Memory is
   O(shards * min(limit, scan_chunk)) regardless of the client-supplied
   count, so a getrange with a huge limit streams like the single-store
   path instead of buffering every shard's contents (and can't be used as
   a memory-exhaustion vector by an unauthenticated client). *)
let scan_chunk = 256

(* K-way merge over per-shard cursors.  Each shard contributes a bounded
   chunk at a time; when a shard's chunk drains and it may hold more, we
   refill from just past the last key it yielded.  [collect shard ~resume
   ~limit emit] scans shard index [shard] — [resume = None] from the
   caller's origin, [Some k] from the shard's own last-yielded key [k]
   (inclusive; the refill filter below drops the duplicate).  The
   collector chooses the cursor source: the live store (via [with_shard],
   for [getrange]) or a pinned per-shard snapshot ([Snapshot.getrange]).
   Shards own disjoint keys, so the merge never sees duplicates across
   shards.  Over live cursors, the result is not atomic w.r.t. concurrent
   writers — a refill reads the shard's current state, exactly as a long
   single-store scan reads each leaf's current state as it passes; over
   snapshot cursors every refill resolves at the pinned cut, so the merge
   is one consistent view. *)
let merged_scan t ~limit ~collect ~cmp f =
  if limit <= 0 then 0
  else begin
    let nshards = Array.length t.stores in
    let chunk = min limit scan_chunk in
    let bufs = Array.make nshards [||] in
    let idx = Array.make nshards 0 in
    let more = Array.make nshards true (* shard may hold keys beyond its buffer *) in
    let fetch s ~resume =
      (* one extra slot on refills: the inclusive resume key comes back
         first and is dropped, netting [chunk] fresh pairs *)
      let want = match resume with None -> chunk | Some _ -> chunk + 1 in
      let acc = ref [] in
      let got = ref 0 in
      collect s ~resume ~limit:want (fun k v ->
          incr got;
          match resume with
          | Some last when cmp k last <= 0 -> ()
          | _ -> acc := (k, v) :: !acc);
      bufs.(s) <- Array.of_list (List.rev !acc);
      idx.(s) <- 0;
      more.(s) <- !got >= want
    in
    for s = 0 to nshards - 1 do
      fetch s ~resume:None
    done;
    let refill s =
      (* refill (at most once per call) until the shard yields a key or
         proves empty; resume from the last key this shard yielded *)
      while idx.(s) >= Array.length bufs.(s) && more.(s) do
        let n = Array.length bufs.(s) in
        if n = 0 then more.(s) <- false (* a full-but-all-duplicate chunk can't happen *)
        else fetch s ~resume:(Some (fst bufs.(s).(n - 1)))
      done
    in
    let emitted = ref 0 in
    let continue = ref true in
    while !continue && !emitted < limit do
      let best = ref (-1) in
      for s = 0 to nshards - 1 do
        refill s;
        if idx.(s) < Array.length bufs.(s) then
          match !best with
          | -1 -> best := s
          | b -> if cmp (fst bufs.(s).(idx.(s))) (fst bufs.(b).(idx.(b))) < 0 then best := s
      done;
      match !best with
      | -1 -> continue := false
      | s ->
          let k, v = bufs.(s).(idx.(s)) in
          idx.(s) <- idx.(s) + 1;
          f k v;
          incr emitted
    done;
    !emitted
  end

let getrange t ~start ?columns ~limit f =
  merged_scan t ~limit
    ~collect:(fun s ~resume ~limit emit ->
      with_shard t s (fun store ->
          let start = match resume with None -> start | Some k -> k in
          ignore (Kvstore.Store.getrange store ~start ?columns ~limit emit)))
    ~cmp:String.compare f

let getrange_rev t ?start ?columns ~limit f =
  merged_scan t ~limit
    ~collect:(fun s ~resume ~limit emit ->
      with_shard t s (fun store ->
          let start = match resume with None -> start | Some k -> Some k in
          ignore (Kvstore.Store.getrange_rev store ?start ?columns ~limit emit)))
    ~cmp:(fun a b -> String.compare b a)
    f

(* ---- cross-shard snapshots ---- *)

module Snapshot = struct
  type router = t

  type snap = { srouter : router; parts : Kvstore.Store.Snapshot.snap array }

  (* One coordinator opens every shard's snapshot before returning, so
     the cut is coordinated: any write acked after [open_] returns is
     invisible on every shard (each shard's pin covers everything that
     shard committed before its open).  Shards have independent version
     clocks, so there is no single cross-shard timestamp — the guarantee
     is per-shard consistency plus the common happens-before line drawn
     by this call. *)
  let open_ (t : router) = { srouter = t; parts = Array.map Kvstore.Store.Snapshot.open_ t.stores }

  let versions s = Array.map Kvstore.Store.Snapshot.version s.parts

  (* Snapshot reads bypass the hot-key cache (it mirrors live values)
     and the Dedicated-mode shard locks (snapshot resolution never
     blocks on writers). *)
  let read s key =
    let sh = shard_of s.srouter key in
    Kvstore.Store.Snapshot.read s.parts.(sh) key

  let read_columns s key columns =
    let sh = shard_of s.srouter key in
    Kvstore.Store.Snapshot.read_columns s.parts.(sh) key columns

  let getrange s ~start ?columns ~limit f =
    merged_scan s.srouter ~limit
      ~collect:(fun sh ~resume ~limit emit ->
        let start = match resume with None -> start | Some k -> k in
        ignore (Kvstore.Store.Snapshot.getrange s.parts.(sh) ~start ?columns ~limit emit))
      ~cmp:String.compare f

  let close s = Array.iter Kvstore.Store.Snapshot.close s.parts
end

(* ---- whole-tier helpers ---- *)

let cardinal t = Array.fold_left (fun acc s -> acc + Kvstore.Store.cardinal s) 0 t.stores

let close t = Array.iter Kvstore.Store.close t.stores

let check t =
  let rec go i =
    if i >= Array.length t.stores then Ok ()
    else
      match Kvstore.Store.check t.stores.(i) with
      | Ok () -> go (i + 1)
      | Error e -> Error (Printf.sprintf "shard %d: %s" i e)
  in
  go 0

(* Arena leak oracle across the tier: quiesce each shard (draining its
   deferred frees), then check allocs == frees + reachable per store.
   Single-threaded callers only, like [check]. *)
let pool_consistency t =
  let rec go i =
    if i >= Array.length t.stores then Ok ()
    else begin
      Kvstore.Store.maintain t.stores.(i);
      match Kvstore.Store.pool_consistency t.stores.(i) with
      | Ok () -> go (i + 1)
      | Error e -> Error (Printf.sprintf "shard %d: %s" i e)
    end
  in
  go 0

let hot_stats t = Option.map (fun h -> Hotcache.stats h.cache) t.hot

let hot_key_count t =
  match t.hot with
  | None -> 0
  | Some h ->
      let fp = Atomic.get h.fp in
      let n = ref 0 in
      Bytes.iter (fun c -> if c <> '\000' then incr n) fp;
      !n

let imbalance_pct loads =
  let n = Array.length loads in
  let total = Array.fold_left ( + ) 0 loads in
  if n = 0 || total = 0 then 0.0
  else begin
    let mean = float_of_int total /. float_of_int n in
    let mx = Array.fold_left max 0 loads in
    (float_of_int mx -. mean) /. mean *. 100.0
  end

let register_obs t =
  let reg = Obs.Registry.global in
  Obs.Registry.gauge reg "shard.shards" (fun () -> Array.length t.stores);
  Obs.Registry.gauge reg "shard.cardinal" (fun () -> cardinal t);
  Obs.Registry.gauge reg "shard.imbalance_pct" (fun () ->
      int_of_float (imbalance_pct (shard_loads t)));
  Obs.Registry.gauge reg "shard.replicas" (fun () -> Array.length t.replicas);
  Obs.Registry.gauge reg "shard.offload.served" (fun () ->
      Atomic.get t.offload_served);
  Obs.Registry.gauge reg "shard.offload.fallback" (fun () ->
      Atomic.get t.offload_fallback);
  (* Arena occupancy summed across the shard stores, plus process-wide
     GC gauges (the sharded server registers through the router only). *)
  let sum_pools f =
    Array.fold_left (fun a s -> a + f (Kvstore.Store.pool_stats s)) 0 t.stores
  in
  Obs.Registry.gauge reg "pool.cells_live" (fun () ->
      sum_pools (fun p -> p.Masstree_core.Pool.cells_live));
  Obs.Registry.gauge reg "pool.blobs_live" (fun () ->
      sum_pools (fun p -> p.Masstree_core.Pool.blobs_live));
  Obs.Registry.gauge reg "pool.deferred_frees" (fun () ->
      sum_pools (fun p -> p.Masstree_core.Pool.deferred_frees));
  Obs.Registry.gauge reg "pool.footprint_bytes" (fun () ->
      Array.fold_left (fun a s -> a + Kvstore.Store.pool_footprint s) 0 t.stores);
  Obs.Registry.register_gc reg;
  Array.iteri
    (fun i a ->
      Obs.Registry.gauge reg (Printf.sprintf "shard.load.%d" i) (fun () -> Atomic.get a))
    t.loads;
  match t.hot with
  | None -> ()
  | Some h ->
      Obs.Registry.gauge reg "shard.hot.keys" (fun () -> hot_key_count t);
      Obs.Registry.gauge reg "shard.hot.hits" (fun () -> (Hotcache.stats h.cache).Hotcache.s_hits);
      Obs.Registry.gauge reg "shard.hot.misses" (fun () ->
          (Hotcache.stats h.cache).Hotcache.s_misses);
      Obs.Registry.gauge reg "shard.hot.fills" (fun () ->
          (Hotcache.stats h.cache).Hotcache.s_fills);
      Obs.Registry.gauge reg "shard.hot.invalidations" (fun () ->
          (Hotcache.stats h.cache).Hotcache.s_invalidations);
      Obs.Registry.gauge reg "shard.hot.hit_rate_pct" (fun () ->
          let s = Hotcache.stats h.cache in
          let total = s.Hotcache.s_hits + s.Hotcache.s_misses in
          if total = 0 then 0 else 100 * s.Hotcache.s_hits / total)
