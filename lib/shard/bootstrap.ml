(* Boot-time recovery + resharding.  See bootstrap.mli for the contract;
   the crash-safety story in brief:

   - Sources (live shard dirs, orphan shard dirs, legacy root state) are
     recovered with tombstones kept, so a newer remove in one dir can
     shadow an older put in another.
   - Every recovered binding re-homes through the router via
     migrate_put/migrate_remove, which carry the recovered version into
     both the in-memory store (replay guard: newest copy wins regardless
     of migration order) and the fresh log (so the next replay agrees).
   - Only after a marker in every fresh log makes the re-homed dataset
     durable do we delete the superseded sources — including the old
     logs/checkpoints inside live shard dirs, which would otherwise keep
     stale copies of keys that migrated elsewhere until a checkpoint
     (checkpointing is off by default) and resurrect them on a later
     restart.
   - A crash before the barrier leaves all sources intact; a crash
     mid-deletion leaves redundant copies whose versions the next boot
     reconciles.  Either way no acked write is lost. *)

let mkdir_p dir =
  try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> () (* path doesn't exist: rm -rf semantics *)

let find_prefixed prefix dir =
  let plen = String.length prefix in
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> String.length f > plen && String.sub f 0 plen = prefix)
    |> List.sort compare
    |> List.map (Filename.concat dir)

let find_logs = find_prefixed "log-"

let find_checkpoints = find_prefixed "ckpt-"

let shard_dirs ~data_dir ~shards =
  if shards <= 1 then [| data_dir |]
  else Array.init shards (fun i -> Filename.concat data_dir (Printf.sprintf "shard-%d" i))

type t = {
  stores : Kvstore.Store.t array;
  shard_logs : Persist.Logger.t array array;
  dirs : string array;
  router : Router.t option;
}

(* Fresh logs for this incarnation in [dir].  idle_markers: an idle
   worker's log keeps advancing its durable timestamp so it never pins
   the recovery cutoff in the past. *)
let fresh_logs ~n_logs dir =
  let epoch_tag = Int64.to_string (Xutil.Clock.wall_us ()) in
  Array.init n_logs (fun i ->
      Persist.Logger.create ~idle_markers:true
        (Filename.concat dir (Printf.sprintf "log-%s-%d" epoch_tag i)))

exception Fail of string

(* Recover whatever a directory holds from a previous incarnation,
   tombstones kept so cross-dir remove-vs-put conflicts resolve by
   version during migration. *)
let recover_dir ~log dir =
  let old_logs = find_logs dir in
  let old_ckpts = find_checkpoints dir in
  if old_logs = [] && old_ckpts = [] then None
  else
    match
      Kvstore.Store.recover ~keep_tombstones:true ~log_paths:old_logs
        ~checkpoint_dirs:old_ckpts ()
    with
    | Ok (s, stats) ->
        log
          (Printf.sprintf "recovered %d keys from %s (%d log records, %d checkpoint entries)"
             (Kvstore.Store.cardinal s) dir stats.Persist.Recovery.records_applied
             stats.Persist.Recovery.checkpoint_entries);
        Some s
    | Error e -> raise (Fail (Printf.sprintf "recovery failed in %s: %s" dir e))

let boot ?(log = ignore) ?hot ~data_dir ~shards ~n_logs () =
  let shards = max 1 shards in
  try
    mkdir_p data_dir;
    let dirs = shard_dirs ~data_dir ~shards in
    Array.iter mkdir_p dirs;
    (* Sources: legacy root-dir state (a single-store deployment switched
       to --shards), orphan shard dirs (left by an incarnation with a
       different shard count), and the live shard dirs themselves. *)
    let legacy = if shards = 1 then None else recover_dir ~log data_dir in
    let orphan_dirs =
      Sys.readdir data_dir |> Array.to_list
      |> List.filter (fun f -> String.length f > 6 && String.sub f 0 6 = "shard-")
      |> List.map (Filename.concat data_dir)
      |> List.filter (fun d ->
             Sys.is_directory d && not (Array.exists (String.equal d) dirs))
      |> List.sort compare
    in
    let orphans = List.map (recover_dir ~log) orphan_dirs in
    let recovered = Array.map (recover_dir ~log) dirs in
    (* Snapshot the superseded on-disk state of the live dirs BEFORE
       creating this incarnation's logs in the same dirs. *)
    let stale = Array.map (fun d -> (find_logs d, find_checkpoints d)) dirs in
    let shard_logs = Array.map (fresh_logs ~n_logs) dirs in
    let stores = Array.map (fun logs -> Kvstore.Store.create ~logs ()) shard_logs in
    (* Continue the old incarnation's version clock: migrated records keep
       their versions, and every NEW write must out-version all of them. *)
    let max_recovered =
      let step acc = function Some s -> max acc (Kvstore.Store.max_version s) | None -> acc in
      List.fold_left step (Array.fold_left step (step 0L legacy) recovered) orphans
    in
    Array.iter (fun s -> Kvstore.Store.ensure_version_above s max_recovered) stores;
    let router = if shards = 1 then None else Some (Router.create ?hot stores) in
    let target = match router with None -> fun _ -> 0 | Some r -> Router.shard_of r in
    (* Re-home every recovered binding under its recovered version.
       Order across sources is irrelevant: the version guard picks the
       newest copy of each key, and tombstones shadow older puts from
       other dirs until the sweep below. *)
    let migrate src =
      Kvstore.Store.iter_entries src (fun ~key ~version ~columns ->
          let s = stores.(target key) in
          match columns with
          | Some columns -> Kvstore.Store.migrate_put s ~key ~version ~columns
          | None -> Kvstore.Store.migrate_remove s ~key ~version)
    in
    let migrate_opt = function Some src -> migrate src | None -> () in
    migrate_opt legacy;
    List.iter migrate_opt orphans;
    Array.iter migrate_opt recovered;
    Array.iter Kvstore.Store.sweep_tombstones stores;
    let migrated =
      legacy <> None || List.exists Option.is_some orphans
      || Array.exists Option.is_some recovered
    in
    (* Reclaim the migration sources once the re-homed records are
       durable: a marker in every fresh log is the group-commit barrier
       (the same trick the checkpoint-rotate path uses).  The old logs
       and checkpoints inside the live shard dirs are superseded too —
       left behind, a stale copy of a key that re-homed to another shard
       would outlive its successor and resurrect on a later restart. *)
    if migrated then begin
      Array.iter (Array.iter Persist.Logger.mark) shard_logs;
      List.iter
        (fun d -> try rm_rf d with Sys_error _ | Unix.Unix_error _ -> ())
        orphan_dirs;
      if legacy <> None then begin
        List.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) (find_logs data_dir);
        List.iter
          (fun c -> try rm_rf c with Sys_error _ | Unix.Unix_error _ -> ())
          (find_checkpoints data_dir)
      end;
      Array.iter
        (fun (logs, ckpts) ->
          List.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) logs;
          List.iter
            (fun c -> try rm_rf c with Sys_error _ | Unix.Unix_error _ -> ())
            ckpts)
        stale
    end;
    Ok { stores; shard_logs; dirs; router }
  with Fail e -> Error e
