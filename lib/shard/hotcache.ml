(* Version-validated read cache for the hottest keys.

   Direct-mapped over immutable entries: each slot holds at most one
   (key, columns, version) entry plus an invalidation stamp.  The
   protocol that keeps a filled entry coherent with the shards:

     - hit:        a lock-free read of the slot's entry; if its key
                   matches, the cached columns are the answer.  A hit
                   racing an invalidation linearizes just before the
                   write that triggered it.
     - fill:       a reader that missed captures the slot's stamp
                   {e before} reading the backing shard, and the fill is
                   accepted only if the stamp is unchanged when the value
                   comes back (checked under the slot lock).  Any write
                   to a key mapping to the slot during the read window
                   bumps the stamp and kills the in-flight fill — the
                   stale-fill race (read old value / concurrent write
                   invalidates / fill publishes the old value forever)
                   cannot happen.
     - invalidate: called by the router {e after} the shard write
                   completes: bump the slot stamp, then drop the entry if
                   it is for the written key.  The stamp bump is
                   unconditional so it also fences in-flight fills of
                   other keys sharing the slot.

   Layout is three parallel flat arrays (entries / stamps / locks) rather
   than an array of slot records: the hit path reads exactly one cell of
   [entries] and then the immutable entry itself — two cache lines before
   the key compare instead of four.  Entries are immutable records
   swapped through a single array cell, so the lock-free hit path can
   never observe a torn value; the plain (non-atomic) cell reads are safe
   under OCaml's memory model (no tearing for pointer-sized cells — a
   racing reader sees some previously-published entry, which the stamp
   protocol already accounts for).  Stamp reads outside the lock may be
   stale, which only makes a fill more conservative: a stale captured
   stamp can never match a bumped current one. *)

type entry = { key : string; columns : string array; version : int64 }

(* Counters are plain ints: [fills]/[rejected_fills]/[invalidations] are
   updated under slot locks (exact up to slot overlap); [hits]/[misses]
   are on the lock-free path, so concurrent increments may lose a tick.
   They steer benchmarks and gauges, not correctness. *)
type t = {
  entries : entry option array;
  stamps : int array; (* written only under the matching lock *)
  locks : Xutil.Spinlock.t array;
  mask : int;
  mutable hits : int;
  mutable misses : int;
  mutable fills : int;
  mutable rejected_fills : int;
  mutable invalidations : int;
}

(* FNV-1a over the key bytes in native int arithmetic (the Int64 version
   boxes on every byte); any well-mixed string hash works.  The offset
   basis exceeds OCaml's 63-bit int literals, so it is truncated once at
   init. *)
let fnv_offset = Int64.to_int 0xcbf29ce484222325L land max_int

let hash key =
  let h = ref fnv_offset in
  for i = 0 to String.length key - 1 do
    h := (!h lxor Char.code key.[i]) * 0x100000001b3
  done;
  !h land max_int

let rec pow2_above n k = if k >= n then k else pow2_above n (k * 2)

let create ~slots =
  let n = pow2_above (max 16 slots) 16 in
  {
    entries = Array.make n None;
    stamps = Array.make n 0;
    locks = Array.init n (fun _ -> Xutil.Spinlock.create ());
    mask = n - 1;
    hits = 0;
    misses = 0;
    fills = 0;
    rejected_fills = 0;
    invalidations = 0;
  }

let slots t = Array.length t.entries

let find t h key =
  match t.entries.(h land t.mask) with
  | Some e when String.equal e.key key ->
      t.hits <- t.hits + 1;
      Some e.columns
  | _ ->
      t.misses <- t.misses + 1;
      None

let stamp t h = t.stamps.(h land t.mask)

let fill t h key ~stamp:st ~version columns =
  let i = h land t.mask in
  Xutil.Spinlock.with_lock t.locks.(i) (fun () ->
      if t.stamps.(i) = st then begin
        t.entries.(i) <- Some { key; columns; version };
        t.fills <- t.fills + 1;
        true
      end
      else begin
        t.rejected_fills <- t.rejected_fills + 1;
        false
      end)

let invalidate t h key =
  let i = h land t.mask in
  Xutil.Spinlock.with_lock t.locks.(i) (fun () ->
      t.stamps.(i) <- t.stamps.(i) + 1;
      t.invalidations <- t.invalidations + 1;
      match t.entries.(i) with
      | Some e when String.equal e.key key -> t.entries.(i) <- None
      | _ -> ())

let cached_version t key =
  match t.entries.(hash key land t.mask) with
  | Some e when String.equal e.key key -> Some e.version
  | _ -> None

let clear t =
  for i = 0 to t.mask do
    Xutil.Spinlock.with_lock t.locks.(i) (fun () ->
        t.stamps.(i) <- t.stamps.(i) + 1;
        t.entries.(i) <- None)
  done

type stats = {
  s_hits : int;
  s_misses : int;
  s_fills : int;
  s_rejected_fills : int;
  s_invalidations : int;
}

let stats t =
  {
    s_hits = t.hits;
    s_misses = t.misses;
    s_fills = t.fills;
    s_rejected_fills = t.rejected_fills;
    s_invalidations = t.invalidations;
  }

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.fills <- 0;
  t.rejected_fills <- 0;
  t.invalidations <- 0
