(** Version-validated read cache for the hottest keys (the Fig 13 skew
    mitigation's serving layer).

    Direct-mapped over immutable entries in a flat slot array, so a hit
    is one cell read plus the entry itself — lock-free, and it can never
    observe a torn value.  Coherence comes from a per-slot invalidation
    stamp:

    + a reader that misses captures {!stamp} {e before} reading the
      backing shard and passes it to {!fill}; the fill is dropped if any
      write bumped the stamp in between (the stale-fill race);
    + writers call {!invalidate} {e after} the shard write completes,
      which bumps the stamp and evicts the entry.

    Entries carry the store's value version, so a validator can check
    that a cached value is never older than the store's current one.

    Every operation takes the key's hash [h] (from {!hash}) so a caller
    on the hot path hashes once and reuses it for slot selection,
    fingerprint gating, and shard routing. *)

type t

val hash : string -> int
(** FNV-1a over the key bytes, in \[0, max_int\].  The router reuses this
    one value for cache slots, hot-set fingerprints, and hash-partition
    routing. *)

val create : slots:int -> t
(** [slots] is rounded up to a power of two (minimum 16). *)

val slots : t -> int

val find : t -> int -> string -> string array option
(** [find t h key] — lock-free probe.  Counted as a hit or miss in
    {!stats}. *)

val stamp : t -> int -> int
(** [stamp t h] — current invalidation stamp of the key's slot.  Capture
    it before reading the backing store. *)

val fill : t -> int -> string -> stamp:int -> version:int64 -> string array -> bool
(** Publish a value read from the backing store; returns [false] (and
    caches nothing) if the slot's stamp moved since [stamp] was taken. *)

val invalidate : t -> int -> string -> unit
(** Bump the key's slot stamp (always — this also fences in-flight fills
    of slot-sharing keys) and drop the entry if it caches [key].  Call
    after the backing-store write completes. *)

val cached_version : t -> string -> int64 option
(** The version a cached entry was filled at, if [key] is cached. *)

val clear : t -> unit

type stats = {
  s_hits : int;
  s_misses : int;
  s_fills : int;
  s_rejected_fills : int;
  s_invalidations : int;
}

val stats : t -> stats
(** Telemetry counters.  Hit/miss counts ride the lock-free path, so
    concurrent increments may occasionally be lost — they steer gauges
    and benchmarks, not correctness; exact when callers are quiescent. *)

val reset_stats : t -> unit
