open Xutil

type entry = { key : string; version : int64; columns : string array }

let manifest_file = "MANIFEST"

type manifest = { began : int64; finished : int64; parts : string list }

let part_magic = 0x4D545054 (* "MTPT" *)

(* Crash windows (lib/faultsim): the part-writer path runs in worker
   threads, the manifest path in the caller.  A crash before
   [ckpt.manifest.begin] leaves a directory with no manifest, which
   recovery ignores — the paper's "latest checkpoint that completed"
   rule. *)
let fp_begin = Faultsim.Failpoint.define "ckpt.begin"
let fp_part_open = Faultsim.Failpoint.define "ckpt.part.open"
let fp_part_write_chunk = Faultsim.Failpoint.define "ckpt.part.write_chunk"
let fp_part_after_write = Faultsim.Failpoint.define "ckpt.part.after_write"
let fp_part_after_fsync = Faultsim.Failpoint.define "ckpt.part.after_fsync"
let fp_manifest_begin = Faultsim.Failpoint.define "ckpt.manifest.begin"
let fp_manifest_after_write = Faultsim.Failpoint.define "ckpt.manifest.after_write"
let fp_manifest_after_fsync = Faultsim.Failpoint.define "ckpt.manifest.after_fsync"

let encode_entry w e =
  let pw = Binio.writer () in
  Binio.write_u64 pw e.version;
  Binio.write_string pw e.key;
  Binio.write_varint pw (Array.length e.columns);
  Array.iter (Binio.write_string pw) e.columns;
  let payload = Binio.contents pw in
  Binio.write_u32 w (Int32.to_int (Crc32c.mask (Crc32c.digest_string payload)) land 0xFFFFFFFF);
  Binio.write_u32 w (String.length payload);
  Binio.write_raw w payload

let decode_entries data =
  let rec go pos acc =
    if pos >= String.length data then Ok (List.rev acc)
    else if String.length data - pos < 8 then Error "truncated part"
    else begin
      let r = Binio.reader ~pos data in
      let crc = Int32.of_int (Binio.read_u32 r) in
      let len = Binio.read_u32 r in
      if String.length data - pos - 8 < len then Error "truncated part"
      else begin
        let payload = String.sub data (pos + 8) len in
        if not (Int32.equal (Crc32c.unmask crc) (Crc32c.digest_string payload)) then
          Error "part crc mismatch"
        else begin
          let pr = Binio.reader payload in
          match
            let version = Binio.read_u64 pr in
            let key = Binio.read_string pr in
            let ncols = Binio.read_varint pr in
            let columns = Array.init ncols (fun _ -> Binio.read_string pr) in
            { key; version; columns }
          with
          | e -> go (pos + 8 + len) (e :: acc)
          | exception Binio.Truncated -> Error "bad part payload"
        end
      end
    end
  in
  go 0 []

let write ?(vfs = Faultsim.Vfs.real) ~dir ~writers ~began_us next =
  assert (writers >= 1);
  vfs.Faultsim.Vfs.mkdir dir;
  Faultsim.Failpoint.hit fp_begin;
  let part_name i = Printf.sprintf "part-%03d" i in
  let errors = Atomic.make None in
  let worker i () =
    try
      let path = Filename.concat dir (part_name i) in
      let file = vfs.Faultsim.Vfs.open_out path in
      Faultsim.Failpoint.hit fp_part_open;
      let w = Binio.writer ~capacity:(1 lsl 16) () in
      Binio.write_u32 w part_magic;
      let rec drain () =
        match next () with
        | None -> ()
        | Some e ->
            encode_entry w e;
            if Binio.length w > 1 lsl 20 then begin
              let data = Binio.contents w in
              Binio.reset w;
              Faultsim.Failpoint.hit fp_part_write_chunk;
              Faultsim.Vfs.write_all file data
            end;
            drain ()
      in
      drain ();
      Faultsim.Vfs.write_all file (Binio.contents w);
      Faultsim.Failpoint.hit fp_part_after_write;
      file.Faultsim.Vfs.fsync ();
      Faultsim.Failpoint.hit fp_part_after_fsync;
      file.Faultsim.Vfs.close ()
    with e -> ignore (Atomic.compare_and_set errors None (Some (Printexc.to_string e)))
  in
  let threads = List.init writers (fun i -> Thread.create (worker i) ()) in
  List.iter Thread.join threads;
  match Atomic.get errors with
  | Some e -> Error e
  | None ->
      (* All parts durable: publish the manifest. *)
      Faultsim.Failpoint.hit fp_manifest_begin;
      let finished = Clock.wall_us () in
      let w = Binio.writer () in
      Binio.write_u64 w began_us;
      Binio.write_u64 w finished;
      Binio.write_varint w writers;
      List.iter (fun i -> Binio.write_string w (part_name i)) (List.init writers Fun.id);
      let payload = Binio.contents w in
      let crc = Crc32c.mask (Crc32c.digest_string payload) in
      let mpath = Filename.concat dir manifest_file in
      let file = vfs.Faultsim.Vfs.open_out mpath in
      let fw = Binio.writer () in
      Binio.write_u32 fw (Int32.to_int crc land 0xFFFFFFFF);
      Binio.write_u32 fw (String.length payload);
      Binio.write_raw fw payload;
      Faultsim.Vfs.write_all file (Binio.contents fw);
      Faultsim.Failpoint.hit fp_manifest_after_write;
      file.Faultsim.Vfs.fsync ();
      Faultsim.Failpoint.hit fp_manifest_after_fsync;
      file.Faultsim.Vfs.close ();
      Ok mpath

let read_manifest ?(vfs = Faultsim.Vfs.real) ~dir () =
  let mpath = Filename.concat dir manifest_file in
  if not (vfs.Faultsim.Vfs.exists mpath) then Error "no manifest"
  else begin
    match vfs.Faultsim.Vfs.read_file mpath with
    | exception e -> Error (Printexc.to_string e)
    | data -> (
        if String.length data < 8 then Error "manifest too short"
        else begin
          let r = Binio.reader data in
          match
            let crc = Int32.of_int (Binio.read_u32 r) in
            let len = Binio.read_u32 r in
            let payload = Binio.read_raw r len in
            if not (Int32.equal (Crc32c.unmask crc) (Crc32c.digest_string payload)) then
              Error "manifest crc mismatch"
            else begin
              let pr = Binio.reader payload in
              let began = Binio.read_u64 pr in
              let finished = Binio.read_u64 pr in
              let n = Binio.read_varint pr in
              let parts = List.init n (fun _ -> Binio.read_string pr) in
              Ok { began; finished; parts }
            end
          with
          | result -> result
          | exception Binio.Truncated -> Error "manifest truncated"
        end)
  end

let iter_part data f =
  let rec go pos n =
    if pos >= String.length data then Ok n
    else if String.length data - pos < 8 then Error "truncated part"
    else begin
      let r = Binio.reader ~pos data in
      let crc = Int32.of_int (Binio.read_u32 r) in
      let len = Binio.read_u32 r in
      if String.length data - pos - 8 < len then Error "truncated part"
      else begin
        let payload = String.sub data (pos + 8) len in
        if not (Int32.equal (Crc32c.unmask crc) (Crc32c.digest_string payload)) then
          Error "part crc mismatch"
        else begin
          let pr = Binio.reader payload in
          match
            let version = Binio.read_u64 pr in
            let key = Binio.read_string pr in
            let ncols = Binio.read_varint pr in
            let columns = Array.init ncols (fun _ -> Binio.read_string pr) in
            { key; version; columns }
          with
          | e ->
              f e;
              go (pos + 8 + len) (n + 1)
          | exception Binio.Truncated -> Error "bad part payload"
        end
      end
    end
  in
  go 0 0

let iter_entries ?(vfs = Faultsim.Vfs.real) ~dir m f =
  let rec go parts n =
    match parts with
    | [] -> Ok n
    | p :: rest -> (
        match vfs.Faultsim.Vfs.read_file (Filename.concat dir p) with
        | exception e -> Error (Printexc.to_string e)
        | data ->
            if String.length data < 4 then Error "part too short"
            else begin
              let r = Binio.reader data in
              let magic = Binio.read_u32 r in
              if magic <> part_magic then Error "bad part magic"
              else begin
                match iter_part (String.sub data 4 (String.length data - 4)) f with
                | Ok k -> go rest (n + k)
                | Error e -> Error e
              end
            end)
  in
  go m.parts 0

let read_entries ?(vfs = Faultsim.Vfs.real) ~dir m =
  let rec go parts acc =
    match parts with
    | [] -> Ok (List.concat (List.rev acc))
    | p :: rest -> (
        match vfs.Faultsim.Vfs.read_file (Filename.concat dir p) with
        | exception e -> Error (Printexc.to_string e)
        | data ->
            if String.length data < 4 then Error "part too short"
            else begin
              let r = Binio.reader data in
              let magic = Binio.read_u32 r in
              if magic <> part_magic then Error "bad part magic"
              else begin
                match decode_entries (String.sub data 4 (String.length data - 4)) with
                | Ok es -> go rest (es :: acc)
                | Error e -> Error e
              end
            end)
  in
  go m.parts []

let load ?vfs ~dir () =
  match read_manifest ?vfs ~dir () with
  | Error e -> Error e
  | Ok m -> (
      match read_entries ?vfs ~dir m with Ok es -> Ok (m, es) | Error e -> Error e)
