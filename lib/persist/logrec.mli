(** Log record format (§5).

    Each update is logged with a wall-clock timestamp and the value's
    version number; recovery sorts out cross-log ordering from these (the
    per-key version order is authoritative, timestamps define the global
    cutoff).  Records are framed with a masked CRC-32C and a length so a
    torn tail or corrupted record is detected and recovery stops at the
    last good prefix of each log.

    {v
    frame   := u32 masked-crc(payload) | u32 length | payload
    payload := u8 kind | u64 timestamp_us | u64 version
               | varint keylen | key
               | kind=put: varint ncols | ncols * (varint len | bytes)
    v} *)

type t =
  | Put of { key : string; version : int64; timestamp : int64; columns : string array }
  | Remove of { key : string; version : int64; timestamp : int64 }
  | Marker of { timestamp : int64 }
      (** Sync marker: carries no update, only advances the log's last
          timestamp, so an idle log does not pin the recovery cutoff in
          the past and discard other logs' durable updates. *)
  | Seal of { timestamp : int64 }
      (** Terminal marker written on clean close.  A log whose last valid
          record is a seal is {e complete} — nothing was ever appended
          after it — so recovery exempts it from the cutoff computation
          entirely instead of constraining the cutoff at its seal time. *)

val timestamp : t -> int64
val version : t -> int64
(** 0 for markers and seals. *)

val key : t -> string
(** "" for markers and seals. *)

val encode : Xutil.Binio.writer -> t -> unit
(** [encode w r] appends the framed record to [w]. *)

val encode_string : t -> string

type decode_result =
  | Record of t * int (** record and the number of bytes consumed *)
  | Need_more (** clean truncation: fewer bytes than one frame *)
  | Corrupt (** framing present but CRC or payload invalid *)

val decode : string -> pos:int -> decode_result
(** [decode buf ~pos] reads one framed record at [pos]. *)

val decode_all : string -> t list * [ `Clean | `Truncated | `Corrupt ]
(** [decode_all buf] reads records until the end of buffer, a truncated
    tail, or corruption; returns the good prefix and how it ended. *)

val decode_all_counted :
  string -> t list * [ `Clean | `Truncated | `Corrupt ] * int
(** Like {!decode_all} but also returns how many bytes of valid prefix
    were consumed, so callers can report how much of a torn tail was
    skipped. *)
