(** Crash recovery (§5).

    Inputs: the set of per-core log files and (optionally) checkpoint
    directories.  The paper's procedure, implemented exactly:

    + Read each log's valid prefix (stopping at a torn or corrupt tail,
      which is skipped with a warning and counted — never an abort).
    + Compute the recovery cutoff [t = min over constraining logs of the
      log's last timestamp]: anything newer than [t] may be missing from
      some other log, so updates with timestamp > [t] are dropped
      everywhere.  Two classes of log constrain nothing (see
      {!cutoff_of_logs}): empty logs and cleanly sealed logs.
    + Load the latest checkpoint that {e completed} before [t]; replay
      logged updates with timestamp ≥ the checkpoint's begin time.
    + Apply updates per key in increasing value-version order (a replayed
      update is ignored if the stored version is already ≥ its version).

    The output is a stream of apply callbacks so the caller (kvstore)
    rebuilds its own tree. *)

type stats = {
  logs_read : int;
  records_scanned : int;
  records_applied : int;
  records_dropped_after_cutoff : int;
  corrupt_tails : int;  (** logs whose tail failed its CRC *)
  torn_records : int;  (** logs ending in a truncated (torn-write) record *)
  skipped_bytes : int;  (** total trailing bytes skipped across all logs *)
  cutoff : int64;
  checkpoint_entries : int;
  checkpoint_dir : string option;  (** the checkpoint recovery loaded, if any *)
}
(** [torn_records] and [skipped_bytes] are also published as
    [recovery.torn_records] / [recovery.skipped_bytes] gauges on
    {!Obs.Registry.global} (values from the most recent recovery). *)

val cutoff_of_logs : Logrec.t list list -> int64
(** [min over constraining logs of max over records of timestamp];
    [Int64.max_int] when no log constrains the cutoff.

    A log constrains nothing when it is {e empty} (it never had a synced
    record, so nothing can be missing from it — and letting it zero the
    cutoff would discard every other log's records, the ROADMAP
    crash-before-first-flush data-loss hazard) or when its last record is
    a {!Logrec.Seal} (the log is complete; no suffix was ever appended,
    so stale sealed logs from dead incarnations cannot constrain newer
    ones). *)

val recover :
  ?vfs:Faultsim.Vfs.t ->
  ?replay_domains:int ->
  log_paths:string list ->
  checkpoint_dirs:string list ->
  put:(key:string -> version:int64 -> columns:string array -> unit) ->
  remove:(key:string -> version:int64 -> unit) ->
  unit ->
  (stats, string) result
(** Replays the checkpoint then the logs into [put]/[remove].  [put] and
    [remove] must themselves enforce the version guard (apply only if
    newer); {!Kvstore.Store} does.

    [replay_domains] (default: one per log, capped by the host's cores)
    replays logs in parallel, as the paper does (§5): the per-key version
    guard makes cross-log replay order-independent, so each log can be
    applied by its own domain. *)
