(** Checkpoints (§5): periodic full dumps that bound recovery time and
    let log space be reclaimed.

    A checkpoint is a directory of part files plus a manifest.  Parts are
    written in parallel by [writers] threads, each draining a share of the
    snapshot stream.  The manifest — written last, after every part is
    synced — carries the checkpoint's begin timestamp (where log replay
    must resume from) and completion marker; a crash mid-checkpoint leaves
    no manifest and recovery falls back to the previous checkpoint, which
    is exactly the paper's "latest valid checkpoint that completed before
    the log recovery time" rule.

    All I/O goes through an optional {!Faultsim.Vfs.t} (default: the real
    filesystem) and passes named {!Faultsim.Failpoint} crash windows
    ([ckpt.begin], [ckpt.part.*], [ckpt.manifest.*]) for the torture
    harness. *)

type entry = { key : string; version : int64; columns : string array }

val write :
  ?vfs:Faultsim.Vfs.t ->
  dir:string ->
  writers:int ->
  began_us:int64 ->
  (unit -> entry option) ->
  (string, string) result
(** [write ~dir ~writers ~began_us next] drains entries from [next]
    (thread-safe pull model) into [writers] part files under [dir] and
    writes the manifest.  Returns the manifest path. *)

val manifest_file : string

type manifest = { began : int64; finished : int64; parts : string list }

val read_manifest :
  ?vfs:Faultsim.Vfs.t -> dir:string -> unit -> (manifest, string) result

val read_entries :
  ?vfs:Faultsim.Vfs.t -> dir:string -> manifest -> (entry list, string) result
(** Load and CRC-verify all parts. *)

val iter_entries :
  ?vfs:Faultsim.Vfs.t ->
  dir:string ->
  manifest ->
  (entry -> unit) ->
  (int, string) result
(** Stream entries to the callback one at a time, part by part — recovery
    of large checkpoints without materializing the entry list.  Returns
    the number of entries applied; stops with [Error] at the first
    corrupt record (after the callback has seen the valid prefix of each
    earlier part). *)

val load :
  ?vfs:Faultsim.Vfs.t -> dir:string -> unit -> (manifest * entry list, string) result
(** [read_manifest] + [read_entries]. *)
