(** Per-core update logging with group commit (§5).

    Each query worker owns one logger (one file), so logging proceeds in
    parallel with no shared-buffer contention.  [append] copies the record
    into an in-memory buffer and returns — the paper's puts respond to the
    client without forcing the log.  A background flusher thread writes
    buffers out in batches and fsyncs at least every [sync_interval]
    (default 200 ms, the paper's safety bound). *)

type t

val create :
  ?buffer_limit:int -> ?sync_interval_s:float -> ?synchronous:bool -> string -> t
(** [create path] opens (creating or truncating) a log at [path] and
    starts its flusher.  [buffer_limit] (default 1 MiB) forces a flush
    when exceeded.  [synchronous] (default false) makes every append
    flush+fsync before returning — used by tests and the durability
    comparison bench. *)

val append : t -> Logrec.t -> unit
(** Thread-safe; returns after buffering. *)

val sync : t -> unit
(** Force everything appended so far to stable storage. *)

val seal : t -> unit
(** Append a {!Logrec.Marker} with the current time and sync: clean
    shutdown, after which recovery's cutoff cannot discard anything
    already in this log set. *)

val rotate : t -> string -> unit
(** [rotate l new_path] atomically (with respect to concurrent appends)
    flushes and closes the current file and continues logging into
    [new_path].  With checkpoints this is how log space is reclaimed
    (§5): checkpoint, rotate, delete the pre-checkpoint files. *)

val close : t -> unit
(** Flush, sync, stop the flusher, close the file. *)

val path : t -> string

val appended : t -> int
(** Records appended so far. *)

val synced_bytes : t -> int
(** Bytes durably written (for tests and stats). *)

val flushes : t -> int
(** Completed flush+fsync cycles on this logger.

    Loggers also publish process-wide telemetry into
    {!Obs.Registry.global}: counters [log.flushes] / [log.flushed_bytes]
    and histograms [log.fsync_us] (fsync call latency) and
    [log.commit_lag_us] (first buffered append to durable — the
    group-commit lag the 200 ms sync interval bounds). *)

val buffered_bytes : t -> int
(** Bytes currently buffered and not yet flushed (racy estimate; the
    [Obs] gauge source). *)

val read_records : string -> Logrec.t list * [ `Clean | `Truncated | `Corrupt ]
(** [read_records path] loads a log file from disk (recovery side). *)
