(** Per-core update logging with group commit (§5).

    Each query worker owns one logger (one file), so logging proceeds in
    parallel with no shared-buffer contention.  [append] copies the record
    into an in-memory buffer and returns — the paper's puts respond to the
    client without forcing the log.  A background flusher thread writes
    buffers out in batches and fsyncs at least every [sync_interval]
    (default 200 ms, the paper's safety bound).

    All disk I/O goes through a {!Faultsim.Vfs.t} (default
    {!Faultsim.Vfs.real}, a thin [Unix] wrapper), and the flush/rotate
    paths pass through named {!Faultsim.Failpoint} crash windows
    ([log.append], [log.flush.*], [log.rotate.*]) — disarmed in
    production, armed by the crash-torture harness. *)

type t

val create :
  ?vfs:Faultsim.Vfs.t ->
  ?buffer_limit:int ->
  ?sync_interval_s:float ->
  ?synchronous:bool ->
  ?manual:bool ->
  ?idle_markers:bool ->
  string ->
  t
(** [create path] opens (creating or truncating) a log at [path] and
    starts its flusher.  [buffer_limit] (default 1 MiB) forces a flush
    when exceeded.  [synchronous] (default false) makes every append
    flush+fsync before returning — used by tests and the durability
    comparison bench.  [manual] (default false) starts no flusher
    thread: nothing reaches disk until an explicit {!sync}/{!mark}/
    {!seal} — the crash-torture harness uses this to place group-commit
    barriers deterministically.  [idle_markers] (default false) makes the
    background flusher write a {!Logrec.Marker} when a sync interval
    elapses with nothing buffered, so an idle log keeps advancing its
    durable timestamp instead of pinning the recovery cutoff in the past
    (the server daemon enables this). *)

val append : t -> Logrec.t -> unit
(** Thread-safe; returns after buffering. *)

val sync : t -> unit
(** Force everything appended so far to stable storage. *)

val mark : t -> unit
(** Append a {!Logrec.Marker} with the current time and sync.  A durable
    group-commit barrier: after [mark] on every log, the recovery cutoff
    cannot fall below this instant, so everything synced earlier is
    guaranteed to be replayed.  The server daemon marks its fresh logs
    after a checkpoint-rotate before deleting the superseded files. *)

val seal : t -> unit
(** Append a {!Logrec.Seal} and sync: clean shutdown.  A sealed log is
    complete — recovery exempts it from the cutoff computation, so stale
    sealed logs from an earlier incarnation can never discard a newer
    log's records. *)

val rotate : t -> string -> unit
(** [rotate l new_path] atomically (with respect to concurrent appends)
    flushes, seals and closes the current file and continues logging into
    [new_path].  With checkpoints this is how log space is reclaimed
    (§5): checkpoint, rotate, delete the pre-checkpoint files.  The seal
    matters for crash safety: a rotated-away file is complete, and if a
    crash interrupts the deletions it must not pin the recovery cutoff
    below the checkpoint that superseded it. *)

val close : t -> unit
(** Flush, sync, stop the flusher, close the file. *)

val path : t -> string

val appended : t -> int
(** Records appended so far. *)

val synced_bytes : t -> int
(** Bytes durably written (for tests and stats). *)

val flushes : t -> int
(** Completed flush+fsync cycles on this logger.

    Loggers also publish process-wide telemetry into
    {!Obs.Registry.global}: counters [log.flushes] / [log.flushed_bytes]
    and histograms [log.fsync_us] (fsync call latency) and
    [log.commit_lag_us] (first buffered append to durable — the
    group-commit lag the 200 ms sync interval bounds). *)

val buffered_bytes : t -> int
(** Bytes currently buffered and not yet flushed (racy estimate; the
    [Obs] gauge source). *)

(** {1 Shipping tail (lib/repl)}

    An enabled tail retains every encoded record frame (CRC framing
    intact) in a bounded in-memory ring as it enters the log buffer, so
    replication cursors can stream the live log without re-reading the
    file.  Sequences are per-logger and monotonic from the moment the
    tail is enabled.  Note the shipping horizon can lead the durable
    horizon: a frame is visible to [read_tail] as soon as it is
    buffered, possibly before its group-commit fsync. *)

val enable_tail : ?cap_bytes:int -> t -> unit
(** Start retaining frames (idempotent).  [cap_bytes] (default 16 MiB)
    bounds the ring; when exceeded the oldest frames are evicted and
    cursors that had not consumed them get [`Gone]. *)

val tail_next_seq : t -> int
(** The sequence the next appended record will get — the cursor a new
    subscriber captures {e before} pinning its bootstrap snapshot. *)

val read_tail :
  t -> from:int -> max_bytes:int ->
  [ `Ok of string list * int | `Gone ]
(** [read_tail t ~from ~max_bytes] returns encoded frames starting at
    sequence [from] plus the next cursor, bounded by [max_bytes] (always
    at least one frame if available).  [`Gone] if the tail is disabled or
    retention already evicted [from] — the subscriber must re-bootstrap. *)

val trim_tail : t -> below:int -> unit
(** Drop retained frames below the acked sequence [below]. *)

val tail_bytes : t -> int
(** Bytes currently retained in the ring (ship-lag telemetry). *)

type tail = { ending : [ `Clean | `Truncated | `Corrupt ]; skipped_bytes : int }

val read_records_full :
  ?vfs:Faultsim.Vfs.t -> string -> Logrec.t list * tail
(** [read_records_full path] loads a log file (recovery side): the valid
    record prefix plus how the file ended and how many trailing bytes
    (torn or corrupt) were skipped. *)

val read_records :
  ?vfs:Faultsim.Vfs.t -> string -> Logrec.t list * [ `Clean | `Truncated | `Corrupt ]
(** {!read_records_full} without the byte accounting. *)
