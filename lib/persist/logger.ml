(* Shipping tail: a bounded ring of encoded record frames retained after
   they enter the log buffer, so replication cursors can stream the live
   log without re-reading the file.  Frames keep their CRC framing —
   replicas re-verify with [Logrec.decode].  Sequence numbers are
   per-logger and monotonic; when retention evicts frames a cursor has
   not consumed yet, reads below [base_seq] report [`Gone] and the
   subscriber must re-bootstrap. *)
type tail_ring = {
  frames : string Queue.t; (* oldest first; seq of front = base_seq *)
  mutable base_seq : int;
  mutable next_seq : int;
  mutable ring_bytes : int;
  cap_bytes : int;
}

type t = {
  vfs : Faultsim.Vfs.t;
  mutable lpath : string;
  mutable file : Faultsim.Vfs.file;
  io_lock : Mutex.t; (* serializes file writes/fsync with rotation *)
  lock : Xutil.Spinlock.t;
  buf : Buffer.t;
  mutable nappended : int;
  mutable nsynced_bytes : int;
  mutable nflushes : int;
  mutable oldest_us : int64; (* wall time of the first append in [buf]; 0 = empty *)
  sync_interval_s : float;
  buffer_limit : int;
  synchronous : bool;
  idle_markers : bool;
  stop : bool Atomic.t;
  flush_request : bool Atomic.t;
  mutable flusher : Thread.t option;
  mutable tail_ring : tail_ring option; (* under [lock] *)
}

(* Process-wide log telemetry (lib/obs): shared names, so a store's whole
   logger set aggregates naturally.  Per-logger figures stay available
   through the accessors below. *)
let flushes_c = Obs.Registry.counter Obs.Registry.global "log.flushes"
let flushed_bytes_c = Obs.Registry.counter Obs.Registry.global "log.flushed_bytes"
let fsync_h = Obs.Registry.histogram Obs.Registry.global "log.fsync_us"

(* Group-commit lag: first buffered append -> durable on disk.  The
   paper's safety story bounds this by the 200 ms sync interval; the
   histogram shows where it actually sits. *)
let lag_h = Obs.Registry.histogram Obs.Registry.global "log.commit_lag_us"

(* Crash windows (lib/faultsim).  Disarmed these cost one atomic
   increment; the torture harness arms them to die mid-flush or
   mid-rotation. *)
let fp_append = Faultsim.Failpoint.define "log.append"
let fp_flush_begin = Faultsim.Failpoint.define "log.flush.begin"
let fp_flush_after_write = Faultsim.Failpoint.define "log.flush.after_write"
let fp_flush_after_fsync = Faultsim.Failpoint.define "log.flush.after_fsync"
let fp_rotate_begin = Faultsim.Failpoint.define "log.rotate.begin"
let fp_rotate_after_drain = Faultsim.Failpoint.define "log.rotate.after_drain"
let fp_rotate_after_fsync = Faultsim.Failpoint.define "log.rotate.after_fsync"
let fp_rotate_after_open = Faultsim.Failpoint.define "log.rotate.after_open"

(* Swap the buffer out under the lock, write + fsync outside it so
   appenders are never blocked on the disk. *)
let flush_now t =
  let data =
    Xutil.Spinlock.with_lock t.lock (fun () ->
        if Buffer.length t.buf = 0 then None
        else begin
          let d = Buffer.contents t.buf in
          Buffer.clear t.buf;
          let oldest = t.oldest_us in
          t.oldest_us <- 0L;
          Some (d, oldest)
        end)
  in
  match data with
  | None -> ()
  | Some (d, oldest) ->
      Mutex.lock t.io_lock;
      let fsync_us =
        Fun.protect
          ~finally:(fun () -> Mutex.unlock t.io_lock)
          (fun () ->
            Faultsim.Failpoint.hit fp_flush_begin;
            Faultsim.Vfs.write_all t.file d;
            Faultsim.Failpoint.hit fp_flush_after_write;
            let s = Xutil.Clock.now_ns () in
            t.file.Faultsim.Vfs.fsync ();
            Faultsim.Failpoint.hit fp_flush_after_fsync;
            Int64.to_int (Int64.sub (Xutil.Clock.now_ns ()) s) / 1000)
      in
      t.nsynced_bytes <- t.nsynced_bytes + String.length d;
      t.nflushes <- t.nflushes + 1;
      Obs.Registry.incr flushes_c;
      Obs.Registry.add flushed_bytes_c (String.length d);
      Obs.Registry.observe fsync_h fsync_us;
      if oldest <> 0L then
        Obs.Registry.observe lag_h
          (max 0 (Int64.to_int (Int64.sub (Xutil.Clock.wall_us ()) oldest)))

let tail_push r encoded =
  Queue.push encoded r.frames;
  r.next_seq <- r.next_seq + 1;
  r.ring_bytes <- r.ring_bytes + String.length encoded;
  while r.ring_bytes > r.cap_bytes && Queue.length r.frames > 1 do
    let dropped = Queue.pop r.frames in
    r.ring_bytes <- r.ring_bytes - String.length dropped;
    r.base_seq <- r.base_seq + 1
  done

let append_record t record =
  let encoded = Logrec.encode_string record in
  Xutil.Spinlock.with_lock t.lock (fun () ->
      if Buffer.length t.buf = 0 then t.oldest_us <- Xutil.Clock.wall_us ();
      Buffer.add_string t.buf encoded;
      t.nappended <- t.nappended + 1;
      (match t.tail_ring with Some r -> tail_push r encoded | None -> ());
      Buffer.length t.buf >= t.buffer_limit)

let flusher_loop t () =
  let tick = min 0.01 (t.sync_interval_s /. 4.0) in
  let last_sync = ref (Unix.gettimeofday ()) in
  while not (Atomic.get t.stop) do
    Thread.delay tick;
    let now = Unix.gettimeofday () in
    let due = now -. !last_sync >= t.sync_interval_s in
    if due || Atomic.get t.flush_request then begin
      Atomic.set t.flush_request false;
      (* An idle log regresses the recovery cutoff: its last record's
         timestamp falls further and further behind the other logs,
         and the min-over-logs cutoff would discard their newer durable
         updates.  When enabled, write a sync marker instead of skipping
         the flush, so every log's durable horizon keeps advancing. *)
      if t.idle_markers && Buffer.length t.buf = 0 then
        ignore (append_record t (Logrec.Marker { timestamp = Xutil.Clock.wall_us () }));
      flush_now t;
      last_sync := now
    end
  done;
  flush_now t

let create ?(vfs = Faultsim.Vfs.real) ?(buffer_limit = 1 lsl 20)
    ?(sync_interval_s = 0.2) ?(synchronous = false) ?(manual = false)
    ?(idle_markers = false) path =
  let file = vfs.Faultsim.Vfs.open_out path in
  let t =
    {
      vfs;
      lpath = path;
      file;
      io_lock = Mutex.create ();
      lock = Xutil.Spinlock.create ();
      buf = Buffer.create 4096;
      nappended = 0;
      nsynced_bytes = 0;
      nflushes = 0;
      oldest_us = 0L;
      sync_interval_s;
      buffer_limit;
      synchronous;
      idle_markers;
      stop = Atomic.make false;
      flush_request = Atomic.make false;
      flusher = None;
      tail_ring = None;
    }
  in
  if not (synchronous || manual) then
    t.flusher <- Some (Thread.create (flusher_loop t) ());
  t

let append t record =
  Faultsim.Failpoint.hit fp_append;
  let over = append_record t record in
  if t.synchronous then flush_now t
  else if over then Atomic.set t.flush_request true

let sync t = flush_now t

let mark t =
  append t (Logrec.Marker { timestamp = Xutil.Clock.wall_us () });
  flush_now t

let rotate t new_path =
  (* The buffer lock stops appends from slipping between draining the old
     file and switching to the new one; the io lock waits out any
     in-flight background flush against the old file. *)
  Xutil.Spinlock.with_lock t.lock (fun () ->
      Mutex.lock t.io_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.io_lock)
        (fun () ->
          Faultsim.Failpoint.hit fp_rotate_begin;
          if Buffer.length t.buf > 0 then begin
            let d = Buffer.contents t.buf in
            Buffer.clear t.buf;
            Faultsim.Vfs.write_all t.file d;
            t.nsynced_bytes <- t.nsynced_bytes + String.length d
          end;
          Faultsim.Failpoint.hit fp_rotate_after_drain;
          (* Seal the outgoing file: nothing can ever be appended to it
             again (appends racing this rotation land in the new file),
             so it is complete and recovery must exempt it from the
             cutoff.  Without this, a crash that interrupts deleting
             rotated-away files leaves them pinning the cutoff below the
             checkpoint that superseded them, and recovery falls back to
             an older checkpoint — resurrecting removes whose records
             sat in an already-deleted sibling log. *)
          let s =
            Logrec.encode_string (Logrec.Seal { timestamp = Xutil.Clock.wall_us () })
          in
          Faultsim.Vfs.write_all t.file s;
          t.nsynced_bytes <- t.nsynced_bytes + String.length s;
          t.file.Faultsim.Vfs.fsync ();
          Faultsim.Failpoint.hit fp_rotate_after_fsync;
          t.file.Faultsim.Vfs.close ();
          t.file <- t.vfs.Faultsim.Vfs.open_out new_path;
          t.lpath <- new_path;
          Faultsim.Failpoint.hit fp_rotate_after_open))

let seal t =
  append t (Logrec.Seal { timestamp = Xutil.Clock.wall_us () });
  flush_now t

let close t =
  Atomic.set t.stop true;
  (match t.flusher with Some th -> Thread.join th | None -> ());
  flush_now t;
  t.file.Faultsim.Vfs.close ()

let path t = t.lpath

let appended t = t.nappended

let synced_bytes t = t.nsynced_bytes

let flushes t = t.nflushes

(* Racy by design: sampled by an obs gauge while appenders run. *)
let buffered_bytes t = Buffer.length t.buf

(* {1 Shipping tail} *)

let enable_tail ?(cap_bytes = 1 lsl 24) t =
  Xutil.Spinlock.with_lock t.lock (fun () ->
      match t.tail_ring with
      | Some _ -> ()
      | None ->
          t.tail_ring <-
            Some
              {
                frames = Queue.create ();
                base_seq = 0;
                next_seq = 0;
                ring_bytes = 0;
                cap_bytes = max 4096 cap_bytes;
              })

let tail_next_seq t =
  Xutil.Spinlock.with_lock t.lock (fun () ->
      match t.tail_ring with None -> 0 | Some r -> r.next_seq)

let read_tail t ~from ~max_bytes =
  Xutil.Spinlock.with_lock t.lock (fun () ->
      match t.tail_ring with
      | None -> `Gone
      | Some r ->
          if from < r.base_seq then `Gone
          else if from >= r.next_seq then `Ok ([], from)
          else begin
            (* Walk from the ring's front, skipping the consumed prefix. *)
            let skip = from - r.base_seq in
            let out = ref [] and taken = ref 0 and bytes = ref 0 and i = ref 0 in
            (try
               Queue.iter
                 (fun frame ->
                   if !i >= skip then begin
                     if !bytes > 0 && !bytes + String.length frame > max_bytes then
                       raise Exit;
                     out := frame :: !out;
                     bytes := !bytes + String.length frame;
                     incr taken
                   end;
                   incr i)
                 r.frames
             with Exit -> ());
            `Ok (List.rev !out, from + !taken)
          end)

let trim_tail t ~below =
  Xutil.Spinlock.with_lock t.lock (fun () ->
      match t.tail_ring with
      | None -> ()
      | Some r ->
          while r.base_seq < below && not (Queue.is_empty r.frames) do
            let dropped = Queue.pop r.frames in
            r.ring_bytes <- r.ring_bytes - String.length dropped;
            r.base_seq <- r.base_seq + 1
          done)

let tail_bytes t =
  Xutil.Spinlock.with_lock t.lock (fun () ->
      match t.tail_ring with None -> 0 | Some r -> r.ring_bytes)

type tail = { ending : [ `Clean | `Truncated | `Corrupt ]; skipped_bytes : int }

let read_records_full ?(vfs = Faultsim.Vfs.real) path =
  let data = vfs.Faultsim.Vfs.read_file path in
  let records, ending, consumed = Logrec.decode_all_counted data in
  (records, { ending; skipped_bytes = String.length data - consumed })

let read_records ?vfs path =
  let records, tail = read_records_full ?vfs path in
  (records, tail.ending)
