type t = {
  mutable lpath : string;
  mutable fd : Unix.file_descr;
  io_lock : Mutex.t; (* serializes fd writes/fsync with rotation *)
  lock : Xutil.Spinlock.t;
  buf : Buffer.t;
  mutable nappended : int;
  mutable nsynced_bytes : int;
  mutable nflushes : int;
  mutable oldest_us : int64; (* wall time of the first append in [buf]; 0 = empty *)
  sync_interval_s : float;
  buffer_limit : int;
  synchronous : bool;
  stop : bool Atomic.t;
  flush_request : bool Atomic.t;
  mutable flusher : Thread.t option;
}

(* Process-wide log telemetry (lib/obs): shared names, so a store's whole
   logger set aggregates naturally.  Per-logger figures stay available
   through the accessors below. *)
let flushes_c = Obs.Registry.counter Obs.Registry.global "log.flushes"
let flushed_bytes_c = Obs.Registry.counter Obs.Registry.global "log.flushed_bytes"
let fsync_h = Obs.Registry.histogram Obs.Registry.global "log.fsync_us"

(* Group-commit lag: first buffered append -> durable on disk.  The
   paper's safety story bounds this by the 200 ms sync interval; the
   histogram shows where it actually sits. *)
let lag_h = Obs.Registry.histogram Obs.Registry.global "log.commit_lag_us"

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then begin
      let n = Unix.write fd b off (len - off) in
      go (off + n)
    end
  in
  go 0

(* Swap the buffer out under the lock, write + fsync outside it so
   appenders are never blocked on the disk. *)
let flush_now t =
  let data =
    Xutil.Spinlock.with_lock t.lock (fun () ->
        if Buffer.length t.buf = 0 then None
        else begin
          let d = Buffer.contents t.buf in
          Buffer.clear t.buf;
          let oldest = t.oldest_us in
          t.oldest_us <- 0L;
          Some (d, oldest)
        end)
  in
  match data with
  | None -> ()
  | Some (d, oldest) ->
      Mutex.lock t.io_lock;
      write_all t.fd d;
      let s = Xutil.Clock.now_ns () in
      Unix.fsync t.fd;
      let fsync_us =
        Int64.to_int (Int64.sub (Xutil.Clock.now_ns ()) s) / 1000
      in
      Mutex.unlock t.io_lock;
      t.nsynced_bytes <- t.nsynced_bytes + String.length d;
      t.nflushes <- t.nflushes + 1;
      Obs.Registry.incr flushes_c;
      Obs.Registry.add flushed_bytes_c (String.length d);
      Obs.Registry.observe fsync_h fsync_us;
      if oldest <> 0L then
        Obs.Registry.observe lag_h
          (max 0 (Int64.to_int (Int64.sub (Xutil.Clock.wall_us ()) oldest)))

let flusher_loop t () =
  let tick = min 0.01 (t.sync_interval_s /. 4.0) in
  let last_sync = ref (Unix.gettimeofday ()) in
  while not (Atomic.get t.stop) do
    Thread.delay tick;
    let now = Unix.gettimeofday () in
    let due = now -. !last_sync >= t.sync_interval_s in
    if due || Atomic.get t.flush_request then begin
      Atomic.set t.flush_request false;
      flush_now t;
      last_sync := now
    end
  done;
  flush_now t

let create ?(buffer_limit = 1 lsl 20) ?(sync_interval_s = 0.2) ?(synchronous = false) path =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let t =
    {
      lpath = path;
      fd;
      io_lock = Mutex.create ();
      lock = Xutil.Spinlock.create ();
      buf = Buffer.create 4096;
      nappended = 0;
      nsynced_bytes = 0;
      nflushes = 0;
      oldest_us = 0L;
      sync_interval_s;
      buffer_limit;
      synchronous;
      stop = Atomic.make false;
      flush_request = Atomic.make false;
      flusher = None;
    }
  in
  if not synchronous then t.flusher <- Some (Thread.create (flusher_loop t) ());
  t

let append t record =
  let encoded = Logrec.encode_string record in
  let over =
    Xutil.Spinlock.with_lock t.lock (fun () ->
        if Buffer.length t.buf = 0 then t.oldest_us <- Xutil.Clock.wall_us ();
        Buffer.add_string t.buf encoded;
        t.nappended <- t.nappended + 1;
        Buffer.length t.buf >= t.buffer_limit)
  in
  if t.synchronous then flush_now t
  else if over then Atomic.set t.flush_request true

let sync t = flush_now t

let rotate t new_path =
  (* The buffer lock stops appends from slipping between draining the old
     file and switching to the new one; the io lock waits out any
     in-flight background flush against the old fd. *)
  Xutil.Spinlock.with_lock t.lock (fun () ->
      Mutex.lock t.io_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.io_lock)
        (fun () ->
          if Buffer.length t.buf > 0 then begin
            let d = Buffer.contents t.buf in
            Buffer.clear t.buf;
            write_all t.fd d;
            t.nsynced_bytes <- t.nsynced_bytes + String.length d
          end;
          Unix.fsync t.fd;
          Unix.close t.fd;
          t.fd <- Unix.openfile new_path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644;
          t.lpath <- new_path))

let seal t =
  append t (Logrec.Marker { timestamp = Xutil.Clock.wall_us () });
  flush_now t

let close t =
  Atomic.set t.stop true;
  (match t.flusher with Some th -> Thread.join th | None -> ());
  flush_now t;
  Unix.close t.fd

let path t = t.lpath

let appended t = t.nappended

let synced_bytes t = t.nsynced_bytes

let flushes t = t.nflushes

(* Racy by design: sampled by an obs gauge while appenders run. *)
let buffered_bytes t = Buffer.length t.buf

let read_records path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let data = really_input_string ic len in
  close_in ic;
  Logrec.decode_all data
