type stats = {
  logs_read : int;
  records_scanned : int;
  records_applied : int;
  records_dropped_after_cutoff : int;
  corrupt_tails : int;
  torn_records : int;
  skipped_bytes : int;
  cutoff : int64;
  checkpoint_entries : int;
  checkpoint_dir : string option;
}

(* Last-recovery tail damage, surfaced as gauges so a server's Stats
   output shows what replay had to skip. *)
let last_torn = ref 0

let last_skipped = ref 0

let () =
  Obs.Registry.gauge Obs.Registry.global "recovery.torn_records" (fun () -> !last_torn);
  Obs.Registry.gauge Obs.Registry.global "recovery.skipped_bytes" (fun () -> !last_skipped)

let fp_begin = Faultsim.Failpoint.define "recovery.begin"
let fp_logs_read = Faultsim.Failpoint.define "recovery.logs_read"
let fp_ckpt_loaded = Faultsim.Failpoint.define "recovery.checkpoint_loaded"
let fp_mid_replay = Faultsim.Failpoint.define "recovery.mid_replay"
let fp_done = Faultsim.Failpoint.define "recovery.done"

(* What a log's contents say about the global replay cutoff.  [None]
   means the log constrains nothing:

   - An {e empty} log lost nothing (it never had a synced record), so it
     must not drag the cutoff to 0 — the pre-fix behavior that made a
     crash-before-first-flush discard every other log's records (the
     ROADMAP data-loss hazard).
   - A log whose last valid record is a {!Logrec.Seal} is {e complete}:
     nothing was ever appended after the seal, so no suffix can be
     missing.  Without this, a stale sealed log from a dead incarnation
     pins the cutoff at its seal time and discards newer incarnations'
     durable records (e.g. a crash midway through post-checkpoint log
     reclamation). *)
let log_bound records =
  match records with
  | [] -> None
  | _ -> (
      let last = List.nth records (List.length records - 1) in
      match last with
      | Logrec.Seal _ -> None
      | _ ->
          Some (List.fold_left (fun m r -> max m (Logrec.timestamp r)) 0L records))

let cutoff_of_logs logs =
  List.fold_left
    (fun acc records ->
      match log_bound records with None -> acc | Some b -> min acc b)
    Int64.max_int logs

(* Latest checkpoint that completed before the cutoff. *)
let pick_checkpoint ?vfs dirs cutoff =
  List.fold_left
    (fun best dir ->
      match Checkpoint.read_manifest ?vfs ~dir () with
      | Error _ -> best
      | Ok m ->
          if Int64.compare m.finished cutoff <= 0 then begin
            match best with
            | Some (_, bm) when Int64.compare bm.Checkpoint.finished m.finished >= 0 -> best
            | _ -> Some (dir, m)
          end
          else best)
    None dirs

let recover ?vfs ?replay_domains ~log_paths ~checkpoint_dirs ~put ~remove () =
  Faultsim.Failpoint.hit fp_begin;
  let corrupt = ref 0 and torn = ref 0 and skipped = ref 0 in
  let logs =
    List.map
      (fun p ->
        let records, tail = Logger.read_records_full ?vfs p in
        (match tail.Logger.ending with
        | `Corrupt -> incr corrupt
        | `Truncated -> incr torn
        | `Clean -> ());
        if tail.Logger.skipped_bytes > 0 then begin
          skipped := !skipped + tail.Logger.skipped_bytes;
          (* A torn tail is expected after a crash mid-flush: the write
             tore inside the final record.  Skip it loudly — the valid
             prefix is all that was ever durable. *)
          Printf.eprintf "recovery: skipping %d trailing bytes (%s tail) in %s\n%!"
            tail.Logger.skipped_bytes
            (match tail.Logger.ending with `Corrupt -> "corrupt" | _ -> "torn")
            p
        end;
        records)
      log_paths
  in
  Faultsim.Failpoint.hit fp_logs_read;
  last_torn := !torn;
  last_skipped := !skipped;
  let cutoff = cutoff_of_logs logs in
  let ckpt = pick_checkpoint ?vfs checkpoint_dirs cutoff in
  let ckpt_entries = ref 0 in
  match
    let replay_from =
      match ckpt with
      | None -> 0L
      | Some (dir, m) -> (
          match
            Checkpoint.iter_entries ?vfs ~dir m (fun (e : Checkpoint.entry) ->
                incr ckpt_entries;
                put ~key:e.key ~version:e.version ~columns:e.columns)
          with
          | Error e -> failwith e
          | Ok _count ->
              Faultsim.Failpoint.hit fp_ckpt_loaded;
              m.began)
    in
    (* Parallel replay (§5): one domain per log.  Correctness does not
       depend on cross-log ordering because every applied record carries
       a version and the apply callbacks keep only the newest. *)
    let scanned = Atomic.make 0 and applied = Atomic.make 0 and dropped = Atomic.make 0 in
    let replay_one records =
      Faultsim.Failpoint.hit fp_mid_replay;
      List.iter
        (fun r ->
          Atomic.incr scanned;
          let ts = Logrec.timestamp r in
          if Int64.compare ts cutoff > 0 then Atomic.incr dropped
          else if Int64.compare ts replay_from >= 0 then begin
            (match r with
            | Logrec.Put { key; version; columns; _ } -> put ~key ~version ~columns
            | Logrec.Remove { key; version; _ } -> remove ~key ~version
            | Logrec.Marker _ | Logrec.Seal _ -> ());
            Atomic.incr applied
          end)
        records
    in
    let logs_arr = Array.of_list logs in
    let domains =
      let d =
        match replay_domains with
        | Some d -> d
        | None -> Domain.recommended_domain_count ()
      in
      max 1 (min d (Array.length logs_arr))
    in
    if domains <= 1 then Array.iter replay_one logs_arr
    else begin
      let next = Atomic.make 0 in
      let worker _ =
        let rec go () =
          let i = Atomic.fetch_and_add next 1 in
          if i < Array.length logs_arr then begin
            replay_one logs_arr.(i);
            go ()
          end
        in
        go ()
      in
      let spawned = Array.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker ())) in
      worker ();
      Array.iter Domain.join spawned
    end;
    Faultsim.Failpoint.hit fp_done;
    (Atomic.get scanned, Atomic.get applied, Atomic.get dropped)
  with
  | scanned, applied, dropped ->
      Ok
        {
          logs_read = List.length logs;
          records_scanned = scanned;
          records_applied = applied;
          records_dropped_after_cutoff = dropped;
          corrupt_tails = !corrupt;
          torn_records = !torn;
          skipped_bytes = !skipped;
          cutoff;
          checkpoint_entries = !ckpt_entries;
          checkpoint_dir = Option.map fst ckpt;
        }
  | exception Failure e -> Error e
