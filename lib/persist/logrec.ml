open Xutil

type t =
  | Put of { key : string; version : int64; timestamp : int64; columns : string array }
  | Remove of { key : string; version : int64; timestamp : int64 }
  | Marker of { timestamp : int64 }
  | Seal of { timestamp : int64 }

let timestamp = function
  | Put { timestamp; _ } | Remove { timestamp; _ } | Marker { timestamp } | Seal { timestamp }
    ->
      timestamp

let version = function
  | Put { version; _ } | Remove { version; _ } -> version
  | Marker _ | Seal _ -> 0L

let key = function Put { key; _ } | Remove { key; _ } -> key | Marker _ | Seal _ -> ""

let put_kind = 1

let remove_kind = 2

let marker_kind = 3

let seal_kind = 4

let encode_payload w r =
  match r with
  | Put { key; version; timestamp; columns } ->
      Binio.write_u8 w put_kind;
      Binio.write_u64 w timestamp;
      Binio.write_u64 w version;
      Binio.write_string w key;
      Binio.write_varint w (Array.length columns);
      Array.iter (Binio.write_string w) columns
  | Remove { key; version; timestamp } ->
      Binio.write_u8 w remove_kind;
      Binio.write_u64 w timestamp;
      Binio.write_u64 w version;
      Binio.write_string w key
  | Marker { timestamp } ->
      Binio.write_u8 w marker_kind;
      Binio.write_u64 w timestamp
  | Seal { timestamp } ->
      Binio.write_u8 w seal_kind;
      Binio.write_u64 w timestamp

let encode w r =
  let pw = Binio.writer () in
  encode_payload pw r;
  let payload = Binio.contents pw in
  let crc = Crc32c.mask (Crc32c.digest_string payload) in
  Binio.write_u32 w (Int32.to_int crc land 0xFFFFFFFF);
  Binio.write_u32 w (String.length payload);
  Binio.write_raw w payload

let encode_string r =
  let w = Binio.writer () in
  encode w r;
  Binio.contents w

type decode_result = Record of t * int | Need_more | Corrupt

let decode_payload payload =
  let r = Binio.reader payload in
  let kind = Binio.read_u8 r in
  let timestamp = Binio.read_u64 r in
  if kind = marker_kind then Marker { timestamp }
  else if kind = seal_kind then Seal { timestamp }
  else begin
  let version = Binio.read_u64 r in
  let key = Binio.read_string r in
  if kind = put_kind then begin
    let ncols = Binio.read_varint r in
    if ncols > 65536 then raise Binio.Truncated;
    let columns = Array.init ncols (fun _ -> Binio.read_string r) in
    Put { key; version; timestamp; columns }
  end
  else if kind = remove_kind then Remove { key; version; timestamp }
  else raise Binio.Truncated
  end

let decode buf ~pos =
  let avail = String.length buf - pos in
  if avail < 8 then Need_more
  else begin
    let r = Binio.reader ~pos buf in
    let crc = Int32.of_int (Binio.read_u32 r) in
    let len = Binio.read_u32 r in
    if len > 16 * 1024 * 1024 then Corrupt
    else if avail < 8 + len then Need_more
    else begin
      let payload = String.sub buf (pos + 8) len in
      if not (Int32.equal (Crc32c.unmask crc) (Crc32c.digest_string payload)) then Corrupt
      else
        match decode_payload payload with
        | record -> Record (record, 8 + len)
        | exception Binio.Truncated -> Corrupt
    end
  end

let decode_all_counted buf =
  let rec go pos acc =
    if pos >= String.length buf then (List.rev acc, `Clean, pos)
    else
      match decode buf ~pos with
      | Record (r, consumed) -> go (pos + consumed) (r :: acc)
      | Need_more -> (List.rev acc, `Truncated, pos)
      | Corrupt -> (List.rev acc, `Corrupt, pos)
  in
  go 0 []

let decode_all buf =
  let records, ending, _consumed = decode_all_counted buf in
  (records, ending)
