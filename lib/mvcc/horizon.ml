type ticket = { tid : int; tversion : int64; tepoch : int; mutable topen : bool }

type t = {
  lock : Xutil.Spinlock.t;
  mutable tickets : ticket list;
  active_count : int Atomic.t;
  mutable next_id : int;
  opened : int Atomic.t;
}

let create () =
  {
    lock = Xutil.Spinlock.create ();
    tickets = [];
    active_count = Atomic.make 0;
    next_id = 0;
    opened = Atomic.make 0;
  }

let active t = Atomic.get t.active_count

let open_ t ~mint ~epoch =
  Xutil.Spinlock.with_lock t.lock (fun () ->
      (* Publish the registration before reading the clock: a writer that
         reads [active = 0] after this incr must have minted its version
         before [mint] below reads the clock, so the snapshot's pinned
         version covers that write's head. *)
      Atomic.incr t.active_count;
      let tk =
        { tid = t.next_id; tversion = mint (); tepoch = epoch (); topen = true }
      in
      t.next_id <- t.next_id + 1;
      t.tickets <- tk :: t.tickets;
      Atomic.incr t.opened;
      tk)

let version tk = tk.tversion
let epoch tk = tk.tepoch

let close t tk =
  Xutil.Spinlock.with_lock t.lock (fun () ->
      if tk.topen then begin
        tk.topen <- false;
        t.tickets <- List.filter (fun x -> x.tid <> tk.tid) t.tickets;
        Atomic.decr t.active_count
      end)

let versions t =
  let vs =
    Xutil.Spinlock.with_lock t.lock (fun () ->
        List.map (fun tk -> tk.tversion) t.tickets)
  in
  let a = Array.of_list vs in
  Array.sort Int64.compare a;
  a

let oldest_epoch t =
  Xutil.Spinlock.with_lock t.lock (fun () ->
      List.fold_left
        (fun acc tk ->
          match acc with
          | None -> Some tk.tepoch
          | Some e -> Some (min e tk.tepoch))
        None t.tickets)

let opened_total t = Atomic.get t.opened
