(** Per-value version chains.

    A chain hangs off a live tree value and records the overwritten
    (or removed) payloads that some open snapshot may still need: newest
    first, each entry stamped with the global store version that created
    it and the EBR epoch current when it was chained.  The chain is an
    immutable list — writers build a new chain and publish it with the
    new head value in one atomic tree store, so readers see either the
    old (value, chain) pair or the new one, never a mixture.

    Visibility rule: a snapshot pinned at version [s] reads the newest
    payload whose version is [<= s] — the head if the head's version
    qualifies, else {!find} on the chain.  An entry's {e death} is the
    version of the next-newer write (its successor toward the head); the
    entry is visible to [s] iff [version <= s < death].

    Pruning keeps exactly the entries some open snapshot can still read:
    given the sorted list of open snapshot versions, an entry survives
    iff one of them lands in its [\[version, death)] lifetime.  With no
    snapshots open every chain collapses to the bare head, so live
    versions are O(open snapshots) per key. *)

type 'v entry = {
  version : int64;  (** store version of the write that created this payload *)
  payload : 'v;
  birth_epoch : int;  (** EBR global epoch when the entry was chained *)
  older : 'v entry option;
}

type 'v t = 'v entry option
(** A chain: [None] is empty, [Some e] has newest retired version [e]. *)

val empty : 'v t

val push : 'v t -> version:int64 -> epoch:int -> 'v -> 'v t
(** [push chain ~version ~epoch payload] is the chain with the retired
    [(version, payload)] in front.  [version] normally exceeds every
    version already in [chain] (writers retire the old head, whose
    version is newer than every chained entry); should it not, entries
    at or above [version] are dropped rather than raising — push runs
    under border locks, where an exception would wedge the node. *)

val find : 'v t -> at:int64 -> 'v entry option
(** [find chain ~at] is the newest entry with [version <= at], if any. *)

val length : 'v t -> int

val oldest_birth_epoch : 'v t -> int option
(** Birth epoch of the oldest entry — the prune-lag signal. *)

val prune : 'v t -> death_of_head:int64 -> snapshots:int64 array -> 'v t
(** [prune chain ~death_of_head ~snapshots] drops every entry no open
    snapshot can read.  [snapshots] is the sorted (ascending) array of
    open snapshot versions; [death_of_head] is the version of the write
    that retired the chain's newest entry (the live head's version, or
    the tombstone's).  An entry with lifetime [\[version, death)] is kept
    iff some snapshot version [s] satisfies [version <= s < death]. *)

val fold : ('a -> 'v entry -> 'a) -> 'a -> 'v t -> 'a
(** Newest-to-oldest fold over the entries. *)
