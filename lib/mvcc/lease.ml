(* A lease can be "doomed" — its end decided (TTL lapse or explicit
   release) while requests still hold pins on the value.  A doomed lease
   stays in the table, invisible to new acquires, until the last unpin
   runs the deferred [on_close]; this is what lets an in-flight snapshot
   read survive a concurrent sweep or Snap_close without the underlying
   snapshot being torn down underneath it. *)
type doom = No_doom | Doom_expired | Doom_released

type 'a lease = {
  value : 'a;
  mutable deadline : int64;
  mutable pins : int;
  mutable doom : doom;
}

type error = Unknown | Expired

let error_to_string = function Unknown -> "unknown" | Expired -> "expired"

type 'a t = {
  lock : Xutil.Spinlock.t;
  table : (int64, 'a lease) Hashtbl.t;
  mutable next_id : int64;
  ttl_us : int64;
  on_expire : int64 -> 'a -> unit;
  (* Bounded memory of expired ids, so a late client gets [Expired]
     rather than [Unknown] for a while after its lease lapses. *)
  expired_ring : int64 array;
  mutable expired_pos : int;
  expired_set : (int64, unit) Hashtbl.t;
}

let create ?(expired_memory = 4096) ~ttl_us ~on_expire () =
  {
    lock = Xutil.Spinlock.create ();
    table = Hashtbl.create 64;
    next_id = 1L;
    ttl_us;
    on_expire;
    expired_ring = Array.make (max 1 expired_memory) 0L;
    expired_pos = 0;
    expired_set = Hashtbl.create 64;
  }

let default_now () = Xutil.Clock.wall_us ()

let remember_expired t id =
  let slot = t.expired_pos mod Array.length t.expired_ring in
  let evicted = t.expired_ring.(slot) in
  if not (Int64.equal evicted 0L) then Hashtbl.remove t.expired_set evicted;
  t.expired_ring.(slot) <- id;
  t.expired_pos <- t.expired_pos + 1;
  Hashtbl.replace t.expired_set id ()

let grant ?now t v =
  let now = match now with Some n -> n | None -> default_now () in
  Xutil.Spinlock.with_lock t.lock (fun () ->
      let id = t.next_id in
      t.next_id <- Int64.add t.next_id 1L;
      Hashtbl.replace t.table id
        { value = v; deadline = Int64.add now t.ttl_us; pins = 0; doom = No_doom };
      id)

(* Under the lock: lapse an unpinned, undoomed, due lease.  The caller
   runs [on_expire] outside the lock. *)
let lapse t id l =
  l.doom <- Doom_expired;
  Hashtbl.remove t.table id;
  remember_expired t id

let miss t id = if Hashtbl.mem t.expired_set id then Error `Expired else Error `Unknown

(* Under the lock: resolve [id] to its live lease, renewing the deadline.
   A pinned lease never lapses here — an in-flight request already
   depends on the value, so its TTL is deferred until the pins drain. *)
let live_lease t now id =
  match Hashtbl.find_opt t.table id with
  | None -> miss t id
  | Some l -> (
      match l.doom with
      | Doom_expired -> Error `Expired
      | Doom_released -> Error `Unknown
      | No_doom ->
          if Int64.compare l.deadline now < 0 && l.pins = 0 then begin
            lapse t id l;
            Error (`Lapsed l.value)
          end
          else begin
            l.deadline <- Int64.add now t.ttl_us;
            Ok l
          end)

(* Map the under-lock result to the public error type, running the
   deferred expiry callback for a lease that lapsed during lookup. *)
let run_lapsed t id = function
  | Error (`Lapsed v) ->
      t.on_expire id v;
      Error Expired
  | Error `Expired -> Error Expired
  | Error `Unknown -> Error Unknown
  | Ok l -> Ok l

let find ?now t id =
  let now = match now with Some n -> n | None -> default_now () in
  match
    run_lapsed t id
      (Xutil.Spinlock.with_lock t.lock (fun () -> live_lease t now id))
  with
  | Ok l -> Ok l.value
  | Error err -> Error err

let acquire ?now t id =
  let now = match now with Some n -> n | None -> default_now () in
  match
    run_lapsed t id
      (Xutil.Spinlock.with_lock t.lock (fun () ->
           match live_lease t now id with
           | Ok l ->
               l.pins <- l.pins + 1;
               Ok l
           | err -> err))
  with
  | Ok l -> Ok l.value
  | Error err -> Error err

let unpin t id =
  let close =
    Xutil.Spinlock.with_lock t.lock (fun () ->
        match Hashtbl.find_opt t.table id with
        | None -> None (* unbalanced unpin; nothing sane to do *)
        | Some l ->
            l.pins <- max 0 (l.pins - 1);
            if l.pins = 0 && l.doom <> No_doom then begin
              Hashtbl.remove t.table id;
              if l.doom = Doom_expired then remember_expired t id;
              Some l.value
            end
            else None)
  in
  match close with None -> () | Some v -> t.on_expire id v

let with_lease ?now t id f =
  match acquire ?now t id with
  | Error err -> Error err
  | Ok v -> Fun.protect ~finally:(fun () -> unpin t id) (fun () -> Ok (f v))

let release ?now t id =
  let now = match now with Some n -> n | None -> default_now () in
  let r =
    Xutil.Spinlock.with_lock t.lock (fun () ->
        match Hashtbl.find_opt t.table id with
        | None -> miss t id
        | Some l -> (
            match l.doom with
            | Doom_expired -> Error `Expired
            | Doom_released -> Error `Unknown
            | No_doom ->
                if Int64.compare l.deadline now < 0 && l.pins = 0 then begin
                  lapse t id l;
                  Error (`Lapsed l.value)
                end
                else if l.pins > 0 then begin
                  (* In-flight reads still hold the value: close when the
                     last one unpins. *)
                  l.doom <- Doom_released;
                  Ok None
                end
                else begin
                  Hashtbl.remove t.table id;
                  Ok (Some l.value)
                end))
  in
  match r with
  | Ok (Some v) ->
      t.on_expire id v;
      Ok ()
  | Ok None -> Ok ()
  | Error (`Lapsed v) ->
      t.on_expire id v;
      Error Expired
  | Error `Expired -> Error Expired
  | Error `Unknown -> Error Unknown

(* Collect due leases under the lock, run callbacks outside it: on_expire
   closes snapshots, which takes other locks.  Pinned leases are doomed
   in place — counted as expired now, closed at their last unpin. *)
let collect_due t now =
  Xutil.Spinlock.with_lock t.lock (fun () ->
      let due = ref [] and deferred = ref 0 in
      Hashtbl.iter
        (fun id l ->
          if l.doom = No_doom && Int64.compare l.deadline now < 0 then
            if l.pins = 0 then due := (id, l) :: !due
            else begin
              l.doom <- Doom_expired;
              incr deferred
            end)
        t.table;
      List.iter (fun (id, l) -> lapse t id l) !due;
      (List.map (fun (id, l) -> (id, l.value)) !due, !deferred))

let sweep ?now t =
  let now = match now with Some n -> n | None -> default_now () in
  let due, deferred = collect_due t now in
  List.iter (fun (id, v) -> t.on_expire id v) due;
  List.length due + deferred

let count t =
  Xutil.Spinlock.with_lock t.lock (fun () ->
      Hashtbl.fold (fun _ l n -> if l.doom = No_doom then n + 1 else n) t.table 0)
