type 'a lease = { value : 'a; mutable deadline : int64 }

type error = Unknown | Expired

let error_to_string = function Unknown -> "unknown" | Expired -> "expired"

type 'a t = {
  lock : Xutil.Spinlock.t;
  table : (int64, 'a lease) Hashtbl.t;
  mutable next_id : int64;
  ttl_us : int64;
  on_expire : int64 -> 'a -> unit;
  (* Bounded memory of expired ids, so a late client gets [Expired]
     rather than [Unknown] for a while after its lease lapses. *)
  expired_ring : int64 array;
  mutable expired_pos : int;
  expired_set : (int64, unit) Hashtbl.t;
}

let create ?(expired_memory = 4096) ~ttl_us ~on_expire () =
  {
    lock = Xutil.Spinlock.create ();
    table = Hashtbl.create 64;
    next_id = 1L;
    ttl_us;
    on_expire;
    expired_ring = Array.make (max 1 expired_memory) 0L;
    expired_pos = 0;
    expired_set = Hashtbl.create 64;
  }

let default_now () = Xutil.Clock.wall_us ()

let remember_expired t id =
  let slot = t.expired_pos mod Array.length t.expired_ring in
  let evicted = t.expired_ring.(slot) in
  if not (Int64.equal evicted 0L) then Hashtbl.remove t.expired_set evicted;
  t.expired_ring.(slot) <- id;
  t.expired_pos <- t.expired_pos + 1;
  Hashtbl.replace t.expired_set id ()

let grant ?now t v =
  let now = match now with Some n -> n | None -> default_now () in
  Xutil.Spinlock.with_lock t.lock (fun () ->
      let id = t.next_id in
      t.next_id <- Int64.add t.next_id 1L;
      Hashtbl.replace t.table id { value = v; deadline = Int64.add now t.ttl_us };
      id)

(* Collect due leases under the lock, run callbacks outside it: on_expire
   closes snapshots, which takes other locks. *)
let collect_due t now =
  Xutil.Spinlock.with_lock t.lock (fun () ->
      let due = ref [] in
      Hashtbl.iter
        (fun id l -> if Int64.compare l.deadline now < 0 then due := (id, l.value) :: !due)
        t.table;
      List.iter
        (fun (id, _) ->
          Hashtbl.remove t.table id;
          remember_expired t id)
        !due;
      !due)

let sweep ?now t =
  let now = match now with Some n -> n | None -> default_now () in
  let due = collect_due t now in
  List.iter (fun (id, v) -> t.on_expire id v) due;
  List.length due

let find ?now t id =
  let now = match now with Some n -> n | None -> default_now () in
  let r =
    Xutil.Spinlock.with_lock t.lock (fun () ->
        match Hashtbl.find_opt t.table id with
        | Some l when Int64.compare l.deadline now >= 0 ->
            l.deadline <- Int64.add now t.ttl_us;
            Ok l.value
        | Some l ->
            Hashtbl.remove t.table id;
            remember_expired t id;
            Error (`Lapsed l.value)
        | None ->
            if Hashtbl.mem t.expired_set id then Error `Expired else Error `Unknown)
  in
  match r with
  | Ok v -> Ok v
  | Error (`Lapsed v) ->
      t.on_expire id v;
      Error Expired
  | Error `Expired -> Error Expired
  | Error `Unknown -> Error Unknown

let release ?now t id =
  let now = match now with Some n -> n | None -> default_now () in
  let r =
    Xutil.Spinlock.with_lock t.lock (fun () ->
        match Hashtbl.find_opt t.table id with
        | Some l ->
            Hashtbl.remove t.table id;
            if Int64.compare l.deadline now >= 0 then Ok l.value
            else begin
              remember_expired t id;
              Error (`Lapsed l.value)
            end
        | None ->
            if Hashtbl.mem t.expired_set id then Error `Expired else Error `Unknown)
  in
  match r with
  | Ok v -> Ok v
  | Error (`Lapsed v) ->
      t.on_expire id v;
      Error Expired
  | Error `Expired -> Error Expired
  | Error `Unknown -> Error Unknown

let count t = Xutil.Spinlock.with_lock t.lock (fun () -> Hashtbl.length t.table)
