(** The snapshot horizon: the registry of open snapshots that tells
    writers whether to chain retired values and tells the prune pass
    which chain entries are still readable.

    Ordering protocol (the whole correctness argument lives here):

    - A {e writer} mints its store version {e first}, then reads
      {!active} to decide whether to chain the value it retires.  If it
      saw [active = 0], every snapshot opened later pins a version [>=]
      the writer's, so the new head itself is visible to it and the
      retired value is dead to everyone.
    - An {e opener} registers {e first} (bumping [active]), then reads
      the store clock to pin its version — both steps inside {!open_},
      under the registry lock.  Any writer that missed the bump
      therefore minted a version the snapshot will see as committed.

    Because the version is minted inside the lock, {!versions} (also
    under the lock) never observes a half-open ticket, so the prune pass
    always sees a fully defined set of snapshot versions. *)

type t

type ticket
(** One open snapshot. *)

val create : unit -> t

val active : t -> int
(** Number of open snapshots — one atomic load, the writer fast path.
    When 0, writers skip chain installation entirely. *)

val open_ : t -> mint:(unit -> int64) -> epoch:(unit -> int) -> ticket
(** [open_ h ~mint ~epoch] registers a snapshot: bumps {!active}, then
    calls [mint] (read the store clock) and [epoch] (read the EBR epoch)
    under the registry lock to stamp the ticket.  Both callbacks must be
    quick and lock-free. *)

val version : ticket -> int64
val epoch : ticket -> int

val close : t -> ticket -> unit
(** Unregisters the snapshot; idempotent. *)

val versions : t -> int64 array
(** Sorted (ascending) versions of the snapshots open right now — the
    prune pass's keep-set.  An entry with lifetime [\[v, death)] may be
    dropped iff no element lands in it. *)

val oldest_epoch : t -> int option
(** The EBR epoch of the oldest open snapshot ([None] when none are
    open) — drives the [mvcc.prune_lag_epochs] gauge. *)

val opened_total : t -> int
(** Monotonic count of {!open_} calls (the [mvcc.snap_open_total]
    counter's source). *)
