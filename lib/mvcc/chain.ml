type 'v entry = {
  version : int64;
  payload : 'v;
  birth_epoch : int;
  older : 'v entry option;
}

type 'v t = 'v entry option

let empty = None

let push chain ~version ~epoch payload =
  (* Callers retire strictly-newer heads (the store's border-lock guards
     keep versions increasing per key), so the drop loop below is dead
     code on every healthy path.  It exists because push runs inside
     tree-update closures while the border node is locked: raising there
     would leave the node locked forever, so an out-of-order push must
     degrade gracefully — entries at or above the incoming version are
     unreadable duplicates under the descending-order invariant and are
     dropped to keep [find]'s binary ordering sound. *)
  let rec drop_newer = function
    | Some e when Int64.compare e.version version >= 0 -> drop_newer e.older
    | rest -> rest
  in
  Some { version; payload; birth_epoch = epoch; older = drop_newer chain }

let find chain ~at =
  let rec go = function
    | None -> None
    | Some e -> if Int64.compare e.version at <= 0 then Some e else go e.older
  in
  go chain

let length chain =
  let rec go n = function None -> n | Some e -> go (n + 1) e.older in
  go 0 chain

let oldest_birth_epoch chain =
  let rec go last = function
    | None -> last
    | Some e -> go (Some e.birth_epoch) e.older
  in
  go None chain

let fold f acc chain =
  let rec go acc = function None -> acc | Some e -> go (f acc e) e.older in
  go acc chain

(* Is there a snapshot version s with [lo <= s < hi]?  [snaps] is sorted
   ascending; binary-search the first s >= lo and test it against hi. *)
let covered snaps ~lo ~hi =
  let n = Array.length snaps in
  let rec bsearch l r =
    if l >= r then l
    else
      let m = (l + r) / 2 in
      if Int64.compare snaps.(m) lo < 0 then bsearch (m + 1) r else bsearch l m
  in
  let i = bsearch 0 n in
  i < n && Int64.compare snaps.(i) hi < 0

let prune chain ~death_of_head ~snapshots =
  (* Walk newest-to-oldest carrying each entry's death (the next-newer
     version), keep survivors, and rebuild the chain oldest-first so
     structure sharing is irrelevant but order is preserved. *)
  let rec collect death acc = function
    | None -> acc
    | Some e ->
        let acc =
          if covered snapshots ~lo:e.version ~hi:death then (e.version, e.payload, e.birth_epoch) :: acc
          else acc
        in
        collect e.version acc e.older
  in
  (* [acc] ends up oldest-first; cons back up into a fresh chain. *)
  let survivors = collect death_of_head [] chain in
  List.fold_left
    (fun older (version, payload, birth_epoch) -> Some { version; payload; birth_epoch; older })
    None survivors
