(** TTL leases over server-held snapshot handles.

    A snapshot held open pins chain entries in memory, so a client that
    dies without closing must not wedge pruning forever: every wire-level
    snapshot handle is a lease that expires [ttl_us] after its last use.
    Touching a lease ({!find}, {!acquire}, {!with_lease}) renews it; a
    periodic {!sweep} expires due leases and runs the table's [on_expire]
    callback (which closes the underlying snapshot, releasing the
    horizon).

    Requests that {e use} the leased value must hold a pin for the
    duration ({!with_lease}, or paired {!acquire}/{!unpin}): a pinned
    lease can be marked expired or released concurrently, but the
    [on_expire] close is deferred until the last pin drains — an
    in-flight snapshot read or scan never has the snapshot closed (and
    its chain entries pruned) underneath it by the TTL sweep or a racing
    close from another connection.

    Errors are typed so clients can distinguish recoverable staleness
    from protocol misuse: {!Expired} means the lease existed and timed
    out (retry by reopening); {!Unknown} means the id was never granted
    by this table — in particular, any id minted before a server restart
    (snapshots do not survive restarts; see docs/MVCC.md).  Expired ids
    are remembered in a bounded ring, oldest forgotten first, after which
    they also report [Unknown]. *)

type 'a t

type error = Unknown | Expired

val error_to_string : error -> string

val create : ?expired_memory:int -> ttl_us:int64 -> on_expire:(int64 -> 'a -> unit) -> unit -> 'a t
(** [create ~ttl_us ~on_expire ()] is an empty table.  [on_expire id v]
    is the single close path: it runs (outside the table's lock) when a
    lease expires in {!sweep}/on lookup, when {!release} ends it, or —
    for a pinned lease whose end was decided mid-request — at the last
    {!unpin}.  [expired_memory] bounds the remembered-expired ring
    (default 4096). *)

val grant : ?now:int64 -> 'a t -> 'a -> int64
(** [grant t v] leases [v] and returns a fresh id (monotonic, never
    reused).  [now] defaults to [Xutil.Clock.wall_us ()]. *)

val find : ?now:int64 -> 'a t -> int64 -> ('a, error) result
(** [find t id] is the leased value; renews the lease but does {e not}
    pin it — do not dereference the value after other threads can sweep
    or release it (use {!with_lease}).  A due-but-unswept lease expires
    here (running [on_expire]) and reports [Expired]. *)

val acquire : ?now:int64 -> 'a t -> int64 -> ('a, error) result
(** [acquire t id] is {!find} plus a pin: the value stays valid — its
    deferred close runs at the matching {!unpin} — even if the lease is
    swept or released meanwhile.  Every [Ok] must be paired with exactly
    one {!unpin}. *)

val unpin : 'a t -> int64 -> unit
(** Drop one pin; if the lease's end was decided while pinned (TTL
    expiry or {!release}), the last unpin runs [on_expire]. *)

val with_lease : ?now:int64 -> 'a t -> int64 -> ('a -> 'b) -> ('b, error) result
(** [with_lease t id f] runs [f] on the pinned value, unpinning on the
    way out (exception-safe). *)

val release : ?now:int64 -> 'a t -> int64 -> (unit, error) result
(** [release t id] ends the lease.  [on_expire] closes the value — now,
    or at the last {!unpin} if requests are in flight.  [Ok] means the
    close is (or is scheduled to be) done; a later {!find} reports
    [Unknown], matching a never-granted id. *)

val sweep : ?now:int64 -> 'a t -> int
(** Expire every due lease, running [on_expire] for each unpinned one
    (pinned leases are marked and closed at their last {!unpin});
    returns the number expired.  Call periodically (the daemon's timer
    thread). *)

val count : 'a t -> int
(** Live (granted, not expired or released) leases. *)
