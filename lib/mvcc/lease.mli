(** TTL leases over server-held snapshot handles.

    A snapshot held open pins chain entries in memory, so a client that
    dies without closing must not wedge pruning forever: every wire-level
    snapshot handle is a lease that expires [ttl_us] after its last use.
    {!find} renews; a periodic {!sweep} expires due leases and runs the
    table's [on_expire] callback (which closes the underlying snapshot,
    releasing the horizon).

    Errors are typed so clients can distinguish recoverable staleness
    from protocol misuse: {!Expired} means the lease existed and timed
    out (retry by reopening); {!Unknown} means the id was never granted
    by this table — in particular, any id minted before a server restart
    (snapshots do not survive restarts; see docs/MVCC.md).  Expired ids
    are remembered in a bounded ring, oldest forgotten first, after which
    they also report [Unknown]. *)

type 'a t

type error = Unknown | Expired

val error_to_string : error -> string

val create : ?expired_memory:int -> ttl_us:int64 -> on_expire:(int64 -> 'a -> unit) -> unit -> 'a t
(** [create ~ttl_us ~on_expire ()] is an empty table.  [on_expire id v]
    runs inside {!sweep} (and inside {!find}/{!release} when they
    encounter a due lease), outside the table's lock.  [expired_memory]
    bounds the remembered-expired ring (default 4096). *)

val grant : ?now:int64 -> 'a t -> 'a -> int64
(** [grant t v] leases [v] and returns a fresh id (monotonic, never
    reused).  [now] defaults to [Xutil.Clock.wall_us ()]. *)

val find : ?now:int64 -> 'a t -> int64 -> ('a, error) result
(** [find t id] is the leased value; renews the lease.  A due-but-unswept
    lease expires here (running [on_expire]) and reports [Expired]. *)

val release : ?now:int64 -> 'a t -> int64 -> ('a, error) result
(** [release t id] ends the lease, returning the value without running
    [on_expire] — the caller owns the close. *)

val sweep : ?now:int64 -> 'a t -> int
(** Expire every due lease, running [on_expire] for each; returns the
    number expired.  Call periodically (the daemon's timer thread). *)

val count : 'a t -> int
(** Live (granted, unexpired-as-of-last-touch) leases. *)
