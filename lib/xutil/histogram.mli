(** Log-bucketed latency/size histogram with percentile queries.

    Benchmarks record per-operation latencies here; buckets grow
    geometrically so the structure is a fixed few hundred words regardless
    of sample count, and recording is allocation-free. *)

type t

val create : unit -> t
(** [create ()] covers values from 1 to ~10^12 with ~1% resolution. *)

val add : t -> int -> unit
(** [add h v] records sample [v] (clamped to the covered range). *)

val count : t -> int
val total : t -> int
val mean : t -> float

val percentile : t -> float -> int
(** [percentile h p] is an upper bound on the [p]-quantile sample
    ([p] in \[0,100\]): the upper edge of the bucket holding that
    quantile, clamped into \[[min_value h], [max_value h]\].  The result
    therefore never exceeds the largest sample and never undershoots the
    smallest — in particular, on a single-sample histogram every
    percentile is exactly that sample, even when the sample landed in the
    overflow bucket.  Returns 0 when empty. *)

val max_value : t -> int

val min_value : t -> int
(** [min_value h] is the smallest recorded sample (after clamping
    negatives to 0); 0 when empty. *)

val merge_into : dst:t -> t -> unit
(** [merge_into ~dst src] adds [src]'s samples into [dst]. *)

val clear : t -> unit
