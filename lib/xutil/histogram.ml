(* Buckets: for each power of two, [sub] linear sub-buckets, i.e. an
   HdrHistogram-style layout with ~1/sub relative error. *)

let sub_bits = 6
let sub = 1 lsl sub_bits
let n_exp = 44 (* covers up to ~1.7e13 *)
let n_buckets = n_exp * sub

type t = {
  counts : int array;
  mutable total_count : int;
  mutable total_sum : int;
  mutable maximum : int;
  mutable minimum : int; (* max_int when empty *)
}

let create () =
  { counts = Array.make n_buckets 0; total_count = 0; total_sum = 0; maximum = 0;
    minimum = max_int }

let bucket_of v =
  let v = if v < 1 then 1 else v in
  if v < sub then v
  else begin
    (* v >= sub: shift so the mantissa lands in [sub, 2*sub), giving
       2^sub_bits sub-buckets per power of two. *)
    let msb = 62 - Bits.count_leading_zeros v in
    let exp = msb - sub_bits in
    let mantissa = (v lsr exp) land (sub - 1) in
    let idx = ((exp + 1) * sub) + mantissa in
    if idx >= n_buckets then n_buckets - 1 else idx
  end

let value_of_bucket idx =
  if idx < sub then idx
  else begin
    let exp = (idx / sub) - 1 in
    let mantissa = idx land (sub - 1) in
    ((sub + mantissa) lsl exp) + (1 lsl exp) - 1
  end

let add h v =
  let v = if v < 0 then 0 else v in
  h.counts.(bucket_of v) <- h.counts.(bucket_of v) + 1;
  h.total_count <- h.total_count + 1;
  h.total_sum <- h.total_sum + v;
  if v > h.maximum then h.maximum <- v;
  if v < h.minimum then h.minimum <- v

let count h = h.total_count
let total h = h.total_sum
let mean h = if h.total_count = 0 then 0.0 else float_of_int h.total_sum /. float_of_int h.total_count
let max_value h = h.maximum
let min_value h = if h.total_count = 0 then 0 else h.minimum

let percentile h p =
  if h.total_count = 0 then 0
  else begin
    let target =
      let t = int_of_float (ceil (p /. 100.0 *. float_of_int h.total_count)) in
      if t < 1 then 1 else if t > h.total_count then h.total_count else t
    in
    (* Clamp into [minimum, maximum]: a bucket's upper bound can exceed the
       largest sample it holds, and the overflow bucket's bound can sit
       *below* a huge clamped sample — either way the true quantile lies
       within the observed range.  This also makes every percentile of a
       single-sample histogram exactly that sample. *)
    let rec go idx seen =
      if idx >= n_buckets then h.maximum
      else begin
        let seen = seen + h.counts.(idx) in
        if seen >= target then max h.minimum (min (value_of_bucket idx) h.maximum)
        else go (idx + 1) seen
      end
    in
    go 0 0
  end

let merge_into ~dst src =
  for i = 0 to n_buckets - 1 do
    dst.counts.(i) <- dst.counts.(i) + src.counts.(i)
  done;
  dst.total_count <- dst.total_count + src.total_count;
  dst.total_sum <- dst.total_sum + src.total_sum;
  if src.maximum > dst.maximum then dst.maximum <- src.maximum;
  if src.minimum < dst.minimum then dst.minimum <- src.minimum

let clear h =
  Array.fill h.counts 0 n_buckets 0;
  h.total_count <- 0;
  h.total_sum <- 0;
  h.maximum <- 0;
  h.minimum <- max_int
