(** Little-endian binary encoding helpers shared by the persistence log
    format and the network wire protocol.

    A {!writer} is an auto-growing byte buffer; readers operate on a string
    with an explicit cursor and raise {!Truncated} instead of returning
    partial values, so both the log-recovery path and the protocol decoder
    can treat short input uniformly. *)

exception Truncated
(** Raised by all [read_*] functions when fewer bytes remain than needed. *)

type writer

val writer : ?capacity:int -> unit -> writer
val length : writer -> int
val contents : writer -> string
val reset : writer -> unit

val write_u8 : writer -> int -> unit
val write_u16 : writer -> int -> unit
val write_u32 : writer -> int -> unit

val write_u64 : writer -> int64 -> unit

val write_varint : writer -> int -> unit
(** [write_varint w n] writes a non-negative integer LEB128-style. *)

val write_string : writer -> string -> unit
(** [write_string w s] writes a varint length then the raw bytes. *)

val write_raw : writer -> string -> unit
(** [write_raw w s] writes the bytes of [s] with no length prefix. *)

val blit_to_bytes : writer -> Bytes.t -> int -> unit
(** [blit_to_bytes w dst pos] copies the accumulated bytes into [dst]. *)

val patch_u32 : writer -> pos:int -> int -> unit
(** [patch_u32 w ~pos v] overwrites 4 already-written bytes at [pos] with
    [v] little-endian — back-patching a length prefix reserved earlier
    (network frame headers reserve 4 bytes, encode the body, then patch). *)

val unsafe_bytes : writer -> Bytes.t
(** The writer's current underlying buffer; only indexes below {!length}
    are meaningful.  The reference is invalidated by any subsequent write
    (growth may reallocate).  Exists so the network stack can hand
    accumulated output straight to [Unix.write] without copying. *)

val drop_prefix : writer -> int -> unit
(** [drop_prefix w n] discards the first [n] accumulated bytes, sliding
    the remainder down in place.  Used by connection output buffers after
    a partial socket write. *)

type reader = { buf : string; mutable pos : int }

val reader : ?pos:int -> string -> reader
val remaining : reader -> int
val read_u8 : reader -> int
val read_u16 : reader -> int
val read_u32 : reader -> int
val read_u64 : reader -> int64
val read_varint : reader -> int
val read_string : reader -> string
val read_raw : reader -> int -> string
