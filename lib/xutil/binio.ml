exception Truncated

type writer = { mutable buf : Bytes.t; mutable len : int }

let writer ?(capacity = 256) () = { buf = Bytes.create (max 16 capacity); len = 0 }

let length w = w.len

let contents w = Bytes.sub_string w.buf 0 w.len

let reset w = w.len <- 0

let ensure w extra =
  let needed = w.len + extra in
  if needed > Bytes.length w.buf then begin
    let cap = ref (Bytes.length w.buf * 2) in
    while !cap < needed do
      cap := !cap * 2
    done;
    let nb = Bytes.create !cap in
    Bytes.blit w.buf 0 nb 0 w.len;
    w.buf <- nb
  end

let write_u8 w v =
  ensure w 1;
  Bytes.unsafe_set w.buf w.len (Char.unsafe_chr (v land 0xff));
  w.len <- w.len + 1

let write_u16 w v =
  ensure w 2;
  Bytes.set_uint16_le w.buf w.len (v land 0xffff);
  w.len <- w.len + 2

let write_u32 w v =
  ensure w 4;
  Bytes.set_int32_le w.buf w.len (Int32.of_int v);
  w.len <- w.len + 4

let write_u64 w v =
  ensure w 8;
  Bytes.set_int64_le w.buf w.len v;
  w.len <- w.len + 8

let write_varint w n =
  assert (n >= 0);
  let rec go n =
    if n < 0x80 then write_u8 w n
    else begin
      write_u8 w (n land 0x7f lor 0x80);
      go (n lsr 7)
    end
  in
  go n

let write_raw w s =
  let n = String.length s in
  ensure w n;
  Bytes.blit_string s 0 w.buf w.len n;
  w.len <- w.len + n

let write_string w s =
  write_varint w (String.length s);
  write_raw w s

let blit_to_bytes w dst pos = Bytes.blit w.buf 0 dst pos w.len

let patch_u32 w ~pos v =
  assert (pos >= 0 && pos + 4 <= w.len);
  Bytes.set_int32_le w.buf pos (Int32.of_int v)

let unsafe_bytes w = w.buf

let drop_prefix w n =
  assert (n >= 0 && n <= w.len);
  if n > 0 then begin
    Bytes.blit w.buf n w.buf 0 (w.len - n);
    w.len <- w.len - n
  end

type reader = { buf : string; mutable pos : int }

let reader ?(pos = 0) buf = { buf; pos }

let remaining r = String.length r.buf - r.pos

let need r n = if remaining r < n then raise Truncated

let read_u8 r =
  need r 1;
  let v = Char.code (String.unsafe_get r.buf r.pos) in
  r.pos <- r.pos + 1;
  v

let read_u16 r =
  need r 2;
  let v = String.get_uint16_le r.buf r.pos in
  r.pos <- r.pos + 2;
  v

let read_u32 r =
  need r 4;
  let v = Int32.to_int (String.get_int32_le r.buf r.pos) land 0xFFFFFFFF in
  r.pos <- r.pos + 4;
  v

let read_u64 r =
  need r 8;
  let v = String.get_int64_le r.buf r.pos in
  r.pos <- r.pos + 8;
  v

let read_varint r =
  let rec go shift acc =
    let b = read_u8 r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 <> 0 then go (shift + 7) acc else acc
  in
  go 0 0

let read_raw r n =
  if n < 0 then raise Truncated;
  need r n;
  let s = String.sub r.buf r.pos n in
  r.pos <- r.pos + n;
  s

let read_string r =
  let n = read_varint r in
  read_raw r n
