(** Crash-torture harness for the persist stack.

    Runs a scripted workload — two server incarnations' worth of puts,
    removes, group-commit barriers, checkpoints, a restart-with-migration
    and a checkpoint-reclaim pass — through {!Kvstore.Store} on a
    {!Faultsim.Sim} disk, crashing at a chosen {!Faultsim.Failpoint} hit,
    then recovering and checking the durability contract:

    - everything acknowledged before the last completed sync barrier is
      present with a correct value (no regression below the newest
      completed checkpoint);
    - writes after the barrier may appear (they were in flight) but only
      with values that were actually written — no torn record is ever
      replayed, no phantom bindings;
    - keys removed before the barrier stay removed.

    {!run_sweep} enumerates every registered failpoint at several hit
    counts and crash-loss variants; it is the engine behind [bench crash]
    and [test/test_crash]. *)

type outcome =
  | Crashed_ok  (** crashed at the armed point; every invariant held. *)
  | Clean  (** the armed hit was never reached and the full run verified. *)
  | Violation of string list  (** durability contract broken — the bug list. *)

type case = { point : string; at : int; variant : int; outcome : outcome }

type summary = {
  cases : case list;
  crash_points : (string * int) list;
      (** point name -> number of cases that actually crashed there. *)
  violations : case list;
}

val run_case : ?seed:int64 -> point:string -> at:int -> variant:int -> unit -> case
(** Run the script once, armed to crash at the [at]-th hit of [point].
    [variant] perturbs the simulated disk's seed, changing which volatile
    bytes survive the crash (drop all / keep all / torn). *)

val run_sweep :
  ?seed:int64 ->
  ?hits:int list ->
  ?variants:int list ->
  ?filter:(string -> bool) ->
  unit ->
  summary
(** Run every registered failpoint x [hits] (default [[1; 2]]) x
    [variants] (default [[0; 1; 2]]).  [filter] restricts the points
    swept — other subsystems (replication) register failpoints this
    script never reaches; sweeping them would only produce [Clean]
    no-ops. *)
