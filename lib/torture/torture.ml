module Failpoint = Faultsim.Failpoint
module Sim = Faultsim.Sim
module Store = Kvstore.Store
module SMap = Map.Make (String)
module SSet = Set.Make (String)

type outcome = Crashed_ok | Clean | Violation of string list
type case = { point : string; at : int; variant : int; outcome : outcome }

type summary = {
  cases : case list;
  crash_points : (string * int) list;
  violations : case list;
}

(* Crash windows the persist stack itself cannot see: the server's
   startup sequence (fresh empty logs created, nothing written yet — the
   historical empty-log cutoff hazard) and its post-checkpoint reclaim
   loop (each superseded file about to be unlinked). *)
let fp_startup = Failpoint.define "torture.startup.logs_created"
let fp_unlink = Failpoint.define "torture.reclaim.unlink"
let fp_rm_ckpt = Failpoint.define "torture.reclaim.rm_ckpt"

let dir = "disk"

(* The oracle.  [model] is what the live store holds; [guaranteed] is
   the model as of the last completed durable barrier ([Logger.mark] on
   every log) — the state a crash must never lose.  Between barriers we
   remember exactly which values were written and which keys removed, so
   post-crash state can be checked value-by-value: a recovered binding
   must be the guaranteed one or one actually written since. *)
type st = {
  disk : Sim.t;
  vfs : Faultsim.Vfs.t;
  crashed : string option ref;
  mutable store : Store.t;
  mutable logs : Persist.Logger.t array;
  mutable seq : int;
  mutable model : string SMap.t;
  mutable guaranteed : string SMap.t;
  mutable since_writes : string list SMap.t;
  mutable since_removed : SSet.t;
  mutable ever_removed : SSet.t;
  written : (string * string, unit) Hashtbl.t;
  mutable ckpt_n : int;
}

(* A crash inside a checkpoint part-writer thread surfaces as an [Error]
   result, not an exception — re-raise so the script stops like a dead
   process would. *)
let bail st =
  match !(st.crashed) with Some p -> raise (Failpoint.Crash p) | None -> ()

let key i = Printf.sprintf "key%03d" i

let make_logs st tag =
  Array.init 2 (fun i ->
      Persist.Logger.create ~vfs:st.vfs ~manual:true
        (Filename.concat dir (Printf.sprintf "log-%s-%d" tag i)))

let put ?(pad = 0) st i =
  st.seq <- st.seq + 1;
  let v = Printf.sprintf "v%05d" st.seq ^ String.make pad 'x' in
  let k = key i in
  Store.put ~worker:(st.seq mod 2) st.store k [| v |];
  st.model <- SMap.add k v st.model;
  Hashtbl.replace st.written (k, v) ();
  st.since_writes <-
    SMap.update k
      (function None -> Some [ v ] | Some l -> Some (v :: l))
      st.since_writes;
  bail st

let remove st i =
  let k = key i in
  if Store.remove ~worker:0 st.store k then begin
    st.model <- SMap.remove k st.model;
    st.since_removed <- SSet.add k st.since_removed;
    st.ever_removed <- SSet.add k st.ever_removed
  end;
  bail st

(* Group-commit barrier: a durable marker in every log.  Only once every
   mark has returned is the current model guaranteed to survive. *)
let barrier st =
  Array.iter Persist.Logger.mark st.logs;
  st.guaranteed <- st.model;
  st.since_writes <- SMap.empty;
  st.since_removed <- SSet.empty;
  bail st

let close_store st =
  Store.close st.store;
  (* A seal syncs everything buffered, so a clean close is a barrier. *)
  st.guaranteed <- st.model;
  st.since_writes <- SMap.empty;
  st.since_removed <- SSet.empty;
  bail st

let checkpoint st ~writers =
  st.ckpt_n <- st.ckpt_n + 1;
  let d = Filename.concat dir (Printf.sprintf "ckpt-%03d" st.ckpt_n) in
  (match Store.checkpoint ~vfs:st.vfs st.store ~dir:d ~writers with
  | Ok _ -> ()
  | Error e ->
      bail st;
      failwith ("checkpoint write failed: " ^ e));
  bail st;
  d

let find_prefix st p =
  st.vfs.readdir dir |> Array.to_list
  |> List.filter (fun f ->
         String.length f >= String.length p && String.sub f 0 (String.length p) = p)
  |> List.sort compare
  |> List.map (Filename.concat dir)

let recover_now st =
  Store.recover ~vfs:st.vfs ~replay_domains:1 ~log_paths:(find_prefix st "log-")
    ~checkpoint_dirs:(find_prefix st "ckpt-") ()

(* The server daemon's restart sequence: recover, open fresh epoch logs,
   migrate the recovered bindings into the logged store (inheriting the
   old version clock — see Store.ensure_version_above). *)
let restart st tag =
  let old =
    match recover_now st with
    | Ok (s, _) -> s
    | Error e -> failwith ("startup recovery failed: " ^ e)
  in
  bail st;
  let logs = make_logs st tag in
  Failpoint.hit fp_startup;
  let s = Store.create ~logs () in
  Store.ensure_version_above s (Store.max_version old);
  ignore
    (Store.getrange old ~start:"" ~limit:max_int (fun k cols ->
         Store.put ~worker:0 s k cols));
  st.store <- s;
  st.logs <- logs;
  bail st

(* Post-checkpoint log reclaim, mirroring the daemon: checkpoint, rotate
   every logger, a durable marker barrier (so the cutoff passes the
   checkpoint's completion and half-done deletions below cannot lose
   data), then unlink superseded logs and older checkpoints. *)
let reclaim st tag ~writers =
  let keep = checkpoint st ~writers in
  Array.iteri
    (fun i l ->
      Persist.Logger.rotate l
        (Filename.concat dir (Printf.sprintf "log-%s-%d" tag i));
      bail st)
    st.logs;
  barrier st;
  let current = Array.to_list (Array.map Persist.Logger.path st.logs) in
  List.iter
    (fun f ->
      if not (List.mem f current) then begin
        Failpoint.hit fp_unlink;
        st.vfs.remove f
      end)
    (find_prefix st "log-");
  List.iter
    (fun c ->
      if c <> keep then begin
        Failpoint.hit fp_rm_ckpt;
        Array.iter (fun f -> st.vfs.remove (Filename.concat c f)) (st.vfs.readdir c);
        st.vfs.remove c
      end)
    (find_prefix st "ckpt-");
  bail st

let script st =
  st.vfs.mkdir dir;
  (* --- incarnation 0 --- *)
  st.logs <- make_logs st "0";
  Failpoint.hit fp_startup;
  st.store <- Store.create ~logs:st.logs ();
  for i = 1 to 10 do put st i done;
  barrier st;
  for i = 11 to 15 do put st i done;
  (* Big values: enough bytes that a checkpoint part writer crosses its
     streaming-flush threshold, reaching ckpt.part.write_chunk. *)
  for i = 40 to 51 do put ~pad:(200 * 1024) st i done;
  remove st 1;
  remove st 2;
  barrier st;
  ignore (checkpoint st ~writers:1);
  for i = 16 to 18 do put st i done;
  remove st 3;
  barrier st;
  close_store st;
  (* --- incarnation 1: restart, migrate, reclaim --- *)
  restart st "1";
  barrier st;
  for i = 19 to 22 do put st i done;
  remove st 4;
  put st 11;
  barrier st;
  reclaim st "2" ~writers:2;
  for i = 23 to 26 do put st i done;
  remove st 5;
  barrier st;
  (* Acked but never synced: a crash from here may or may not keep these. *)
  for i = 27 to 30 do put st i done

let trunc v = if String.length v <= 12 then v else String.sub v 0 12 ^ "..."

let verify_crash st =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  match recover_now st with
  | Error e ->
      [ "recovery failed after crash: " ^ e ]
  | Ok (s2, stats) ->
      (* Every key ever touched: guaranteed state must survive; anything
         else recovered must be a value genuinely written since. *)
      let keys =
        Hashtbl.fold (fun (k, _) () acc -> SSet.add k acc) st.written SSet.empty
      in
      SSet.iter
        (fun k ->
          let g = SMap.find_opt k st.guaranteed in
          let since =
            match SMap.find_opt k st.since_writes with Some l -> l | None -> []
          in
          match Store.get s2 k with
          | Some [| v |] ->
              let ok = (match g with Some gv -> gv = v | None -> false) || List.mem v since in
              if not ok then
                err "key %s: recovered %S is neither guaranteed (%s) nor written since barrier"
                  k (trunc v)
                  (match g with Some gv -> trunc gv | None -> "absent")
          | Some cols -> err "key %s: recovered with %d columns" k (Array.length cols)
          | None -> (
              match g with
              | None -> ()
              | Some gv ->
                  if not (SSet.mem k st.since_removed) then
                    err "key %s: guaranteed value %S lost" k (trunc gv)))
        keys;
      (* No phantoms: every recovered binding was actually written. *)
      ignore
        (Store.getrange s2 ~start:"" ~limit:max_int (fun k cols ->
             if Array.length cols <> 1 || not (Hashtbl.mem st.written (k, cols.(0)))
             then err "phantom binding for key %s" k));
      (* No regression below the checkpoint recovery chose: each of its
         entries is present unless the key was explicitly removed. *)
      (match stats.Persist.Recovery.checkpoint_dir with
      | None -> ()
      | Some d -> (
          match Persist.Checkpoint.load ~vfs:st.vfs ~dir:d () with
          | Error e -> err "checkpoint %s chosen by recovery is unreadable: %s" d e
          | Ok (_, entries) ->
              List.iter
                (fun (e : Persist.Checkpoint.entry) ->
                  if Store.get s2 e.key = None && not (SSet.mem e.key st.ever_removed)
                  then err "checkpointed key %s regressed" e.key)
                entries));
      List.rev !errs

let verify_clean st =
  close_store st;
  match recover_now st with
  | Error e -> [ "recovery failed after clean shutdown: " ^ e ]
  | Ok (s2, _) ->
      let errs = ref [] in
      let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
      SMap.iter
        (fun k v ->
          match Store.get s2 k with
          | Some [| v' |] when v' = v -> ()
          | Some _ -> err "key %s: wrong value after clean recovery" k
          | None -> err "key %s: missing after clean recovery" k)
        st.model;
      let n = Store.cardinal s2 in
      if n <> SMap.cardinal st.model then
        err "clean recovery has %d keys, model has %d" n (SMap.cardinal st.model);
      List.rev !errs

let run_case ?(seed = 42L) ~point ~at ~variant () =
  Failpoint.reset ();
  let sim_seed =
    Int64.add seed
      (Int64.of_int ((((Hashtbl.hash point * 31) + at) * 131) + variant))
  in
  let disk = Sim.create ~seed:sim_seed in
  let crashed = ref None in
  Failpoint.set_crash_hook (fun p ->
      if !crashed = None then crashed := Some p;
      Sim.freeze disk);
  Failpoint.arm point ~at Failpoint.Crash_process;
  let st =
    {
      disk;
      vfs = Sim.vfs disk;
      crashed;
      store = Store.create ();
      logs = [||];
      seq = 0;
      model = SMap.empty;
      guaranteed = SMap.empty;
      since_writes = SMap.empty;
      since_removed = SSet.empty;
      ever_removed = SSet.empty;
      written = Hashtbl.create 64;
      ckpt_n = 0;
    }
  in
  let completed =
    try
      script st;
      true
    with Failpoint.Crash _ -> false
  in
  Failpoint.disarm_all ();
  Failpoint.clear_crash_hook ();
  let outcome =
    if completed && !crashed = None then
      match verify_clean st with [] -> Clean | errs -> Violation errs
    else begin
      Sim.crash disk;
      match verify_crash st with [] -> Crashed_ok | errs -> Violation errs
    end
  in
  { point; at; variant; outcome }

let run_sweep ?(seed = 42L) ?(hits = [ 1; 2 ]) ?(variants = [ 0; 1; 2 ])
    ?(filter = fun _ -> true) () =
  let cases =
    List.concat_map
      (fun point ->
        List.concat_map
          (fun at ->
            List.map (fun variant -> run_case ~seed ~point ~at ~variant ()) variants)
          hits)
      (List.filter filter (Failpoint.names ()))
  in
  let crash_points =
    List.fold_left
      (fun acc c ->
        match c.outcome with
        | Crashed_ok ->
            SMap.update c.point
              (function None -> Some 1 | Some n -> Some (n + 1))
              acc
        | Clean | Violation _ -> acc)
      SMap.empty cases
    |> SMap.bindings
  in
  let violations =
    List.filter (fun c -> match c.outcome with Violation _ -> true | _ -> false) cases
  in
  { cases; crash_points; violations }
