(** Ready-made race scenarios: small multi-writer/multi-reader scripts
    over one tree, every operation recorded against the {!Oracle} with
    scheduler-clock windows.

    Each scenario targets a protocol window named in
    [docs/CONCURRENCY.md]: permutation publish vs point reads, border
    splits vs scans, node death vs descending scans, stale-slot reuse,
    trie-layer creation and collapse, split ascent into a full root.
    [bench race] sweeps all of them; [test/race] pins the
    satellite-required ones individually. *)

type ctx = {
  tree : int Masstree_core.Tree.t;
  oracle : Oracle.t;
  mutable next_val : int;
}

(** Recording wrappers — each brackets the tree call with {!Sched.now}
    and records it.  Usable directly when writing one-off scenarios in
    tests. *)

val put : ctx -> string -> unit
val remove : ctx -> string -> unit
val get : ctx -> string -> unit
val multi_get : ctx -> string list -> unit
val scan : ?start:string -> ?stop:string -> ?limit:int -> ctx -> unit
val scan_rev : ?start:string -> ?stop:string -> ?limit:int -> ctx -> unit
val maintain : ctx -> unit

val prepop : ctx -> string -> unit
(** Prepare-phase put, stamped at step 0 (scheduler not yet running). *)

val k : int -> string
(** [k i] is an exactly-8-byte key: distinct slice per key, no suffixes. *)

val lk : string -> string
(** [lk suffix] shares an 8-byte prefix with its siblings: forces suffix
    storage and, on clash, a deeper trie layer. *)

type t = {
  name : string;
  descr : string;
  prepare : ctx -> unit;  (** runs before the scheduler takes control *)
  tasks : (string * (ctx -> unit)) list;
}

val mk : t -> Sched.mk
(** Package for the exploration drivers: fresh tree + oracle per run;
    the finalizer runs [Tree.check], [Tree.maintain], a final read-back
    of every written key, and [Oracle.check]. *)

val scenarios : t list
val find : string -> t option
