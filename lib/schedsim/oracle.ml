(* Sequential oracle for schedule exploration.

   Every operation the scenario performs against the tree is recorded
   with a logical-time window [s, e] (scheduler steps at invocation and
   return).  Values are unique per write, so a read's result identifies
   exactly which write it observed, and per-key linearizability reduces
   to interval reasoning:

     read r over [s, e] is acceptable iff some write w has
       value(w) = r  ∧  start(w) ≤ e                (w began before r ended)
       ∧ no write w' has start(w') > end(w) ∧ end(w') < s
                                  (nothing fully separates w from r)

   Scans additionally check ordering, bounds, per-emission validity at
   the emission step, and completeness: a key whose acceptable value set
   over the whole scan window is a singleton [Some v] was present with
   [v] throughout the scan, so the scan must emit it (unless cut off by
   [limit]). *)

type value = int

type write = { wid : int; wval : value option; ws : int; we : int }

type read_rec = {
  rkey : string;
  rval : value option;
  rs : int;
  re : int;
  rexclude : int;  (* a put/remove checks its prev-result against the
                      other writes: exclude its own wid *)
  rwhat : string;
}

type emit = { ekey : string; eval_ : value; estep : int }

type scan_rec = {
  srev : bool;
  sstart : string option;
  sstop : string option;
  slimit : int;
  semits : emit list;
  scount : int;
  ss : int;
  se : int;
}

type t = {
  mutable next_wid : int;
  writes : (string, write list ref) Hashtbl.t;  (* newest first *)
  mutable reads : read_rec list;
  mutable scans : scan_rec list;
}

let create () =
  { next_wid = 0; writes = Hashtbl.create 64; reads = []; scans = [] }

let record_write o key v ~s ~e =
  let wid = o.next_wid in
  o.next_wid <- wid + 1;
  let w = { wid; wval = v; ws = s; we = e } in
  (match Hashtbl.find_opt o.writes key with
  | Some l -> l := w :: !l
  | None -> Hashtbl.add o.writes key (ref [ w ]));
  wid

let record_read o key v ~s ~e ~exclude ~what =
  o.reads <-
    { rkey = key; rval = v; rs = s; re = e; rexclude = exclude; rwhat = what }
    :: o.reads

let record_scan o ~rev ~start ~stop ~limit ~emits ~count ~s ~e =
  o.scans <-
    {
      srev = rev;
      sstart = start;
      sstop = stop;
      slimit = limit;
      semits = emits;
      scount = count;
      ss = s;
      se = e;
    }
    :: o.scans

let keys o = Hashtbl.fold (fun k _ acc -> k :: acc) o.writes [] |> List.sort compare

(* The key's full write history, oldest first, with the implicit initial
   "absent" write. *)
let history o key =
  (* wid -2: distinct from every real write id and from the "no
     exclusion" sentinel -1, so the initial write is never filtered. *)
  let initial = { wid = -2; wval = None; ws = -1; we = -1 } in
  match Hashtbl.find_opt o.writes key with
  | Some l -> initial :: List.rev !l
  | None -> [ initial ]

let acceptable o key ~exclude ~s ~e =
  let ws = List.filter (fun w -> w.wid <> exclude) (history o key) in
  List.filter
    (fun w ->
      w.ws <= e
      && not (List.exists (fun w' -> w'.ws > w.we && w'.we < s) ws))
    ws

let show_value = function None -> "None" | Some v -> Printf.sprintf "Some %d" v

let show_acceptable acc =
  "{" ^ String.concat ", " (List.map (fun w -> show_value w.wval) acc) ^ "}"

let check_read o r errs =
  let acc = acceptable o r.rkey ~exclude:r.rexclude ~s:r.rs ~e:r.re in
  if not (List.exists (fun w -> w.wval = r.rval) acc) then
    errs :=
      Printf.sprintf "%s = %s over [%d,%d] not linearizable; acceptable %s"
        r.rwhat (show_value r.rval) r.rs r.re (show_acceptable acc)
      :: !errs

let in_range sc k =
  if sc.srev then
    (match sc.sstart with Some st -> k <= st | None -> true)
    && (match sc.sstop with Some sp -> k >= sp | None -> true)
  else
    (match sc.sstart with Some st -> k >= st | None -> true)
    && (match sc.sstop with Some sp -> k < sp | None -> true)

let scan_id sc =
  Printf.sprintf "%s[%s,%s) over [%d,%d]"
    (if sc.srev then "scan_rev" else "scan")
    (match sc.sstart with Some s -> String.escaped s | None -> "")
    (match sc.sstop with Some s -> String.escaped s | None -> "")
    sc.ss sc.se

let check_scan o sc errs =
  let id = scan_id sc in
  let err fmt = Printf.ksprintf (fun m -> errs := (id ^ ": " ^ m) :: !errs) fmt in
  if sc.scount <> List.length sc.semits then
    err "returned count %d but emitted %d keys" sc.scount
      (List.length sc.semits);
  if sc.scount > sc.slimit then err "emitted more than limit %d" sc.slimit;
  (* Ordering (strict: also rules out duplicates) and range bounds. *)
  let rec order = function
    | a :: (b :: _ as rest) ->
        if (not sc.srev) && a.ekey >= b.ekey then
          err "out of order: %S before %S" a.ekey b.ekey
        else if sc.srev && a.ekey <= b.ekey then
          err "out of order (rev): %S before %S" a.ekey b.ekey;
        order rest
    | _ -> ()
  in
  order sc.semits;
  List.iter
    (fun em ->
      if not (in_range sc em.ekey) then err "emitted out-of-range key %S" em.ekey)
    sc.semits;
  (* Each emission must be a valid read at its emission step: window
     from scan start (the key can't have been read before the scan
     began) to the emission step. *)
  List.iter
    (fun em ->
      let acc = acceptable o em.ekey ~exclude:(-1) ~s:sc.ss ~e:em.estep in
      if not (List.exists (fun w -> w.wval = Some em.eval_) acc) then
        err "emitted %S = %d, not a valid read at step %d; acceptable %s"
          em.ekey em.eval_ em.estep (show_acceptable acc))
    sc.semits;
  (* Completeness: keys stably present for the whole scan window must
     appear, unless the scan was cut off by [limit] before reaching
     them. *)
  let emitted = List.map (fun em -> em.ekey) sc.semits in
  let cutoff k =
    sc.scount >= sc.slimit
    &&
    match List.rev emitted with
    | [] -> true (* limit 0, or hit limit without emitting: vacuous *)
    | last :: _ -> if sc.srev then k < last else k > last
  in
  List.iter
    (fun k ->
      if in_range sc k && not (List.mem k emitted) && not (cutoff k) then begin
        match acceptable o k ~exclude:(-1) ~s:sc.ss ~e:sc.se with
        | [ { wval = Some _ as v; _ } ] ->
            err "lost key %S: present as %s for the whole window"
              k (show_value v)
        | _ -> ()
      end)
    (keys o)

let check o =
  let errs = ref [] in
  List.iter (fun r -> check_read o r errs) (List.rev o.reads);
  List.iter (fun sc -> check_scan o sc errs) (List.rev o.scans);
  match List.rev !errs with
  | [] -> Ok ()
  | es -> Error es
