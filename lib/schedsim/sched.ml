(* Deterministic cooperative scheduler over the OCC core's schedule
   points.

   Logical threads (tasks) run on ONE domain as effect-suspendable
   computations.  [Schedpoint.hit]/[spin] inside the tree code perform a
   [Yield] effect; the scheduler catches it, parks the task, and picks
   the next task to run via a pluggable [pick] policy.  Because the tree
   code between two schedule points runs atomically with respect to the
   other tasks, a run is fully determined by the sequence of choices the
   policy makes — which is what makes exhaustive (DFS) and seeded random
   exploration, and byte-for-byte replay, possible. *)

open Effect
open Effect.Deep
module Schedpoint = Masstree_core.Schedpoint

type _ Effect.t += Yield : Schedpoint.kind * string -> unit Effect.t

type st =
  | Fresh of (unit -> unit)
  | Suspended of (unit, unit) continuation
  | Running
  | Finished

type task = {
  tname : string;
  mutable st : st;
  (* A [Spin]-kind yield marks the task unable to progress until some
     other task acts: it leaves the eligible pool until another task has
     taken a step.  This keeps lock/stable spin loops from exploding the
     schedule tree (and from livelocking random exploration). *)
  mutable spinning : bool;
  mutable last_point : string;
}

type failure =
  | Task_exn of { task : string; exn : string; backtrace : string }
  | Deadlock of { waiting : (string * string) list }
  | Out_of_steps of { steps : int }

let failure_to_string = function
  | Task_exn { task; exn; backtrace } ->
      Printf.sprintf "task %s raised %s%s" task exn
        (if backtrace = "" then "" else "\n" ^ backtrace)
  | Deadlock { waiting } ->
      Printf.sprintf "deadlock: %s"
        (String.concat ", "
           (List.map (fun (t, p) -> Printf.sprintf "%s@%s" t p) waiting))
  | Out_of_steps { steps } -> Printf.sprintf "no completion after %d steps" steps

type run = {
  steps : int;
  branches : int array;  (* pool arity at each branch point, in order *)
  chosen : int array;    (* the choice taken at each branch point *)
  failure : failure option;
  trace : (string * string) list;  (* (task, point) per suspension *)
}

(* Logical time: bumped once per scheduler step.  Operations bracket
   themselves with [now] to get linearizability windows for the oracle.
   Not reset by [run_one] so that scenario preparation (which runs before
   the tasks exist) can stamp its writes after an explicit reset. *)
let clock = ref 0
let now () = !clock
let reset_clock () = clock := 0

(* How many consecutive steps may execute without any task making a
   non-spin transition before we call it a deadlock.  Spin loops under
   the cooperative scheduler burn one step per retry, so a genuine
   deadlock crosses this quickly while a writer briefly holding a lock
   does not. *)
let stall_limit = 2000

let run_one ?(max_steps = 100_000) ?(record_trace = false) ~tasks
    ~(pick : branch:int -> pool:string array -> int) () : run =
  let tasks =
    Array.of_list
      (List.map
         (fun (tname, f) ->
           { tname; st = Fresh f; spinning = false; last_point = "(start)" })
         tasks)
  in
  let failure = ref None in
  let aborting = ref false in
  let in_task = ref false in
  let trace = ref [] in
  let branches = ref [] and chosen = ref [] and nbranch = ref 0 in
  let handler (task : task) =
    {
      retc = (fun () -> task.st <- Finished);
      exnc =
        (fun e ->
          let bt = Printexc.get_backtrace () in
          task.st <- Finished;
          if (not !aborting) && !failure = None then
            failure :=
              Some
                (Task_exn
                   { task = task.tname; exn = Printexc.to_string e; backtrace = bt }));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield (kind, point) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  task.st <- Suspended k;
                  task.spinning <- kind = Schedpoint.Spin;
                  task.last_point <- point;
                  if record_trace then trace := (task.tname, point) :: !trace)
          | _ -> None);
    }
  in
  let step task =
    incr clock;
    in_task := true;
    (match task.st with
    | Fresh f ->
        task.st <- Running;
        match_with f () (handler task)
    | Suspended k ->
        task.st <- Running;
        (* The deep handler installed by [match_with] stays attached to
           the continuation, so later yields land back here. *)
        continue k ()
    | Running | Finished -> assert false);
    in_task := false
  in
  Schedpoint.enable (fun kind point ->
      if !in_task then perform (Yield (kind, point)));
  let steps = ref 0 in
  let stall = ref 0 in
  let last_task = ref (-1) in
  Fun.protect
    ~finally:(fun () -> Schedpoint.disable ())
    (fun () ->
      let finished () =
        Array.for_all (fun t -> t.st = Finished) tasks
      in
      let collect p =
        let l = ref [] in
        Array.iteri (fun i t -> if p t then l := i :: !l) tasks;
        Array.of_list (List.rev !l)
      in
      let continue_ = ref true in
      while !continue_ do
        if !failure <> None || finished () then continue_ := false
        else if !steps >= max_steps then begin
          failure := Some (Out_of_steps { steps = !steps });
          continue_ := false
        end
        else begin
          let eligible =
            collect (fun t -> t.st <> Finished && not t.spinning)
          in
          let pool =
            if Array.length eligible > 0 then eligible
            else collect (fun t -> t.st <> Finished)
          in
          if !stall > stall_limit then begin
            failure :=
              Some
                (Deadlock
                   {
                     waiting =
                       Array.to_list pool
                       |> List.map (fun i ->
                              (tasks.(i).tname, tasks.(i).last_point));
                   });
            continue_ := false
          end;
          if !continue_ then begin
            (* Order the pool with the previously-running task first, so
               that choice 0 always means "keep going": the DFS all-zeros
               schedule is then the non-preemptive one, and prefixes
               read naturally in replays. *)
            let pool =
              match Array.find_index (fun i -> i = !last_task) pool with
              | Some j when j > 0 ->
                  let p = Array.copy pool in
                  let cur = p.(j) in
                  Array.blit p 0 p 1 j;
                  p.(0) <- cur;
                  p
              | _ -> pool
            in
            let idx =
              if Array.length pool = 1 then 0
              else begin
                let names =
                  Array.map (fun i -> tasks.(i).tname) pool
                in
                let c = pick ~branch:!nbranch ~pool:names in
                let c = if c < 0 || c >= Array.length pool then 0 else c in
                branches := Array.length pool :: !branches;
                chosen := c :: !chosen;
                incr nbranch;
                c
              end
            in
            let ti = pool.(idx) in
            let t = tasks.(ti) in
            t.spinning <- false;
            incr steps;
            step t;
            last_task := ti;
            (* Progress = the stepped task finished or yielded at an
               ordinary point.  A genuine deadlock (every runnable task
               in a spin loop) accumulates one stall per step and trips
               [stall_limit]; a writer briefly holding a lock resets the
               counter at its next Step yield. *)
            if t.st = Finished || not t.spinning then stall := 0
            else incr stall;
            (* Another task took a step: spinners get to re-check their
               condition. *)
            Array.iteri (fun i u -> if i <> ti then u.spinning <- false) tasks
          end
        end
      done;
      (* Unwind abandoned tasks so their protect-finalizers (epoch unpin
         etc.) run; their exceptions are expected and ignored. *)
      if not (finished ()) then begin
        aborting := true;
        Array.iter
          (fun t ->
            match t.st with
            | Suspended k -> ( try discontinue k Exit with _ -> ())
            | _ -> ())
          tasks
      end;
      {
        steps = !steps;
        branches = Array.of_list (List.rev !branches);
        chosen = Array.of_list (List.rev !chosen);
        failure = !failure;
        trace = List.rev !trace;
      })

(* ------------------------------------------------------------------ *)
(* Exploration drivers.                                                *)
(* ------------------------------------------------------------------ *)

type mk = unit -> (string * (unit -> unit)) list * (unit -> (unit, string) result)
(* A scenario factory: fresh tasks plus a finalizer that runs the
   post-conditions (oracle check, structural check).  The finalizer is
   only invoked after a clean run — after a failed or abandoned run the
   tree may hold leaked locks, and post-conditions would hang or lie. *)

type case = {
  ok : (unit, string) result;
  run : run;
}

let finish (mk_finalize : unit -> (unit, string) result) (r : run) : case =
  let ok =
    match r.failure with
    | Some f -> Error (failure_to_string f)
    | None -> mk_finalize ()
  in
  { ok; run = r }

let run_choices ~(mk : mk) ~(choices : int array) ?max_steps
    ?(record_trace = false) () : case =
  let tasks, finalize = mk () in
  let pick ~branch ~pool:_ =
    if branch < Array.length choices then choices.(branch) else 0
  in
  let r = run_one ?max_steps ~record_trace ~tasks ~pick () in
  finish finalize r

type style = Uniform | Pct

let style_to_string = function Uniform -> "uniform" | Pct -> "pct"
let style_of_string = function
  | "uniform" -> Some Uniform
  | "pct" -> Some Pct
  | _ -> None

let make_pick rng = function
  | Uniform -> fun ~branch:_ ~pool -> Xutil.Rng.int rng (Array.length pool)
  | Pct ->
      (* Probabilistic concurrency testing, after Burckhardt et al.:
         fixed random per-task priorities, plus a few random change
         points where the currently-preferred task is demoted below
         everything seen so far.  Finds bugs that need one long
         uninterrupted run plus a couple of well-placed preemptions with
         much higher probability than a uniform walk. *)
      let prio : (string, float) Hashtbl.t = Hashtbl.create 8 in
      let demoted = ref 0.0 in
      let last = ref "" in
      let ncp = 1 + Xutil.Rng.int rng 3 in
      let cps = Array.init ncp (fun _ -> Xutil.Rng.int rng 400) in
      let p nm =
        match Hashtbl.find_opt prio nm with
        | Some x -> x
        | None ->
            let x = 1.0 +. Xutil.Rng.float rng in
            Hashtbl.replace prio nm x;
            x
      in
      fun ~branch ~pool ->
        if Array.exists (fun c -> c = branch) cps && !last <> "" then begin
          demoted := !demoted -. 1.0;
          Hashtbl.replace prio !last !demoted
        end;
        let best = ref 0 in
        Array.iteri
          (fun i nm -> if p nm > p pool.(!best) then best := i)
          pool;
        last := pool.(!best);
        !best

let run_random ~(mk : mk) ~(seed : int64) ?(style = Pct) ?max_steps
    ?(record_trace = false) () : case =
  let rng = Xutil.Rng.create seed in
  let tasks, finalize = mk () in
  let pick = make_pick rng style in
  let r = run_one ?max_steps ~record_trace ~tasks ~pick () in
  finish finalize r

type explore = {
  explored : int;
  exhaustive : bool;  (* the DFS closed the whole tree within budget *)
  fail : (string * int array) option;  (* message, choice prefix to replay *)
}

let explore_exhaustive ~(mk : mk) ?(max_schedules = 1000) ?max_steps () :
    explore =
  (* Iterative-deepening-free DFS by replay: rerun the scenario with a
     forced choice prefix, then advance the prefix like an odometer whose
     digit bounds are the branch arities the run actually met.  Scenario
     determinism guarantees the prefix reproduces the same branch
     structure up to its last digit. *)
  let prefix = ref [||] in
  let explored = ref 0 in
  let fail = ref None in
  let complete = ref false in
  let continue_ = ref true in
  while !continue_ do
    if !explored >= max_schedules || !fail <> None then continue_ := false
    else begin
      let pfx = !prefix in
      let tasks, finalize = mk () in
      let pick ~branch ~pool:_ =
        if branch < Array.length pfx then pfx.(branch) else 0
      in
      let r = run_one ?max_steps ~tasks ~pick () in
      incr explored;
      (match finish finalize r with
      | { ok = Error m; run } -> fail := Some (m, run.chosen)
      | { ok = Ok (); _ } -> ());
      let n = Array.length r.chosen in
      let rec back i =
        if i < 0 then None
        else if r.chosen.(i) + 1 < r.branches.(i) then Some i
        else back (i - 1)
      in
      match back (n - 1) with
      | None ->
          complete := true;
          continue_ := false
      | Some i ->
          prefix :=
            Array.append (Array.sub r.chosen 0 i) [| r.chosen.(i) + 1 |]
    end
  done;
  { explored = !explored; exhaustive = !complete; fail = !fail }

let choices_to_string c =
  String.concat "," (List.map string_of_int (Array.to_list c))

let choices_of_string s =
  if String.trim s = "" then [||]
  else
    String.split_on_char ',' s
    |> List.map (fun x -> int_of_string (String.trim x))
    |> Array.of_list
