(* MVCC race scenarios: store-backed scripts interleaving writers,
   snapshot readers and the version pruner at the chain protocol's
   schedule points (mvcc.open.pinned, mvcc.snap.read,
   mvcc.chain.installed, mvcc.prune.pass, mvcc.snap.closed — see
   docs/MVCC.md).

   Unlike {!Scenario}, the operations here run through
   [Kvstore.Store] so the whole write path executes under the
   scheduler: version minting, horizon registration, chain install
   under the border lock, pruning.  Values are unique ints encoded as a
   single column, so the {!Oracle}'s interval checker applies
   unchanged.

   Snapshot reads are recorded against the snapshot's OPEN window, not
   the read's own window: a read at the pinned cut must return a value
   that was current at some instant during the open — exactly the
   oracle's acceptability rule for a read spanning [s_open, e_open].
   If pruning ever drops a version an open snapshot still needs, the
   stale result lands outside that window and the oracle rejects it. *)

module Store = Kvstore.Store

type snap = {
  handle : Store.Snapshot.snap;
  s_open : int;
  e_open : int;
}

type ctx = {
  store : Store.t;
  oracle : Oracle.t;
  mutable next_val : int;
  snaps : snap option array;
  (* Keys prepopulated and never touched by any task: a snapshot scan
     must emit every one of them (completeness at the cut). *)
  mutable stable : string list;
}

let fresh ctx =
  let v = ctx.next_val in
  ctx.next_val <- v + 1;
  v

let k = Scenario.k

let enc v = [| string_of_int v |]

let dec = function
  | None -> None
  | Some cols ->
      if Array.length cols = 0 then None else Some (int_of_string cols.(0))

(* Recording operation wrappers. *)

let put ctx key =
  let v = fresh ctx in
  let s = Sched.now () in
  Store.put ctx.store key (enc v);
  let e = Sched.now () in
  ignore (Oracle.record_write ctx.oracle key (Some v) ~s ~e)

let remove ctx key =
  let s = Sched.now () in
  ignore (Store.remove ctx.store key);
  let e = Sched.now () in
  ignore (Oracle.record_write ctx.oracle key None ~s ~e)

let get ctx key =
  let s = Sched.now () in
  let r = Store.get ctx.store key in
  let e = Sched.now () in
  Oracle.record_read ctx.oracle key (dec r) ~s ~e ~exclude:(-1)
    ~what:(Printf.sprintf "get %S" key)

let prune ctx = Store.prune ctx.store

let snap_open ctx slot =
  let s = Sched.now () in
  let handle = Store.Snapshot.open_ ctx.store in
  let e = Sched.now () in
  ctx.snaps.(slot) <- Some { handle; s_open = s; e_open = e }

let snap_read ctx slot key =
  match ctx.snaps.(slot) with
  | None -> ()
  | Some sn ->
      let r = Store.Snapshot.read sn.handle key in
      Oracle.record_read ctx.oracle key (dec r) ~s:sn.s_open ~e:sn.e_open
        ~exclude:(-1)
        ~what:(Printf.sprintf "snap[%d] read %S" slot key)

(* Full snapshot scan: every emission is a read at the cut; stable keys
   the scan missed are recorded as absence reads, which the oracle
   rejects (their step-0 write fully precedes the open window). *)
let snap_scan ctx slot =
  match ctx.snaps.(slot) with
  | None -> ()
  | Some sn ->
      let emits = ref [] in
      ignore
        (Store.Snapshot.getrange sn.handle ~start:"" ~limit:max_int
           (fun key cols -> emits := (key, cols) :: !emits));
      let emits = List.rev !emits in
      ignore
        (List.fold_left
           (fun prev (key, _) ->
             (match prev with
             | Some p when String.compare p key >= 0 ->
                 failwith
                   (Printf.sprintf "snap scan out of order: %S then %S" p key)
             | _ -> ());
             Some key)
           None emits);
      List.iter
        (fun (key, cols) ->
          Oracle.record_read ctx.oracle key
            (dec (Some cols))
            ~s:sn.s_open ~e:sn.e_open ~exclude:(-1)
            ~what:(Printf.sprintf "snap[%d] scan emit %S" slot key))
        emits;
      List.iter
        (fun key ->
          if not (List.mem_assoc key emits) then
            Oracle.record_read ctx.oracle key None ~s:sn.s_open ~e:sn.e_open
              ~exclude:(-1)
              ~what:(Printf.sprintf "snap[%d] scan missed stable %S" slot key))
        ctx.stable

let snap_close ctx slot =
  match ctx.snaps.(slot) with
  | None -> ()
  | Some sn -> Store.Snapshot.close sn.handle

(* Prepare-phase helpers (scheduler disabled, stamped at step 0). *)

let prepop ctx key =
  let v = fresh ctx in
  Store.put ctx.store key (enc v);
  ignore (Oracle.record_write ctx.oracle key (Some v) ~s:0 ~e:0)

let prestable ctx key =
  prepop ctx key;
  ctx.stable <- key :: ctx.stable

type t = {
  name : string;
  descr : string;
  prepare : ctx -> unit;
  tasks : (string * (ctx -> unit)) list;
}

let mk (sc : t) : Sched.mk =
 fun () ->
  Sched.reset_clock ();
  let ctx =
    {
      store = Store.create ();
      oracle = Oracle.create ();
      next_val = 1;
      snaps = Array.make 4 None;
      stable = [];
    }
  in
  sc.prepare ctx;
  let tasks = List.map (fun (n, f) -> (n, fun () -> f ctx)) sc.tasks in
  let finalize () =
    let errs = ref [] in
    (* Clear the horizon (close is idempotent), run a prune pass, and
       require the satellite invariant: with no snapshots open, every
       chained version is reclaimed. *)
    Array.iter
      (function Some sn -> Store.Snapshot.close sn.handle | None -> ())
      ctx.snaps;
    Store.prune ctx.store;
    if Store.snapshots_open ctx.store <> 0 then
      errs :=
        Printf.sprintf "%d snapshot(s) still open after close-all"
          (Store.snapshots_open ctx.store)
        :: !errs;
    if Store.mvcc_versions_live ctx.store <> 0 then
      errs :=
        Printf.sprintf "versions_live = %d after horizon cleared and prune"
          (Store.mvcc_versions_live ctx.store)
        :: !errs;
    let fin = Sched.now () + 1 in
    List.iter
      (fun key ->
        let r = Store.get ctx.store key in
        Oracle.record_read ctx.oracle key (dec r) ~s:fin ~e:fin ~exclude:(-1)
          ~what:(Printf.sprintf "final get %S" key))
      (Oracle.keys ctx.oracle);
    (match Oracle.check ctx.oracle with
    | Ok () -> ()
    | Error ms -> errs := !errs @ ms);
    match !errs with [] -> Ok () | es -> Error (String.concat "; " es)
  in
  (tasks, finalize)

(* ------------------------------------------------------------------ *)
(* The scenario library.                                               *)
(* ------------------------------------------------------------------ *)

let scenarios : t list =
  [
    {
      name = "mvcc-put-vs-snapread";
      descr = "writer retires heads into chains while a snapshot reads its cut";
      prepare = (fun c -> prepop c (k 1); prepop c (k 2));
      tasks =
        [
          ( "snapper",
            fun c ->
              snap_open c 1;
              snap_read c 1 (k 1);
              snap_read c 1 (k 2);
              snap_close c 1 );
          ("writer", fun c -> put c (k 1); put c (k 1); put c (k 2));
        ];
    };
    {
      name = "mvcc-prune-vs-open";
      descr = "prune pass races a fresh snapshot registering with the horizon";
      (* Slot 0 is opened during prepare so the writer's installs are
         chained deterministically; the closer then retires it and
         prunes while the opener pins a new cut. *)
      prepare =
        (fun c ->
          for i = 1 to 4 do prepop c (k i) done;
          snap_open c 0);
      tasks =
        [
          ("writer", fun c -> put c (k 1); put c (k 2));
          ("closer", fun c -> snap_close c 0; prune c);
          ( "opener",
            fun c ->
              snap_open c 1;
              snap_read c 1 (k 1);
              snap_read c 1 (k 2);
              snap_close c 1 );
        ];
    };
    {
      name = "mvcc-prune-vs-snapread";
      descr = "pruner must keep every version the pinned snapshot can still read";
      prepare =
        (fun c ->
          prepop c (k 1);
          prepop c (k 2);
          snap_open c 0);
      tasks =
        [
          ("reader", fun c -> snap_read c 0 (k 1); snap_read c 0 (k 2));
          ("writer", fun c -> put c (k 1); put c (k 2); put c (k 1));
          ("pruner", fun c -> prune c; prune c);
        ];
    };
    {
      name = "mvcc-remove-vs-snapread";
      descr = "chained remove installs a tombstone; the pinned cut still sees the value";
      prepare = (fun c -> prepop c (k 1); prepop c (k 2); prepop c (k 3));
      tasks =
        [
          ( "snapper",
            fun c ->
              snap_open c 1;
              snap_read c 1 (k 2);
              snap_read c 1 (k 3);
              snap_close c 1 );
          ("remover", fun c -> remove c (k 2); remove c (k 3); put c (k 3));
          ("reader", fun c -> get c (k 2); get c (k 3));
        ];
    };
    {
      name = "mvcc-snapscan-vs-split";
      descr = "snapshot scan stays a consistent cut across a border split";
      (* 14 even keys fill one border; the writer's odd insert splits it
         while the snapshot scan walks the keyspace.  Every prepopulated
         key must be emitted regardless of the migration. *)
      prepare = (fun c -> for i = 0 to 13 do prestable c (k (2 * i)) done);
      tasks =
        [
          ("writer", fun c -> put c (k 13); put c (k 15));
          ( "snapper",
            fun c ->
              snap_open c 1;
              snap_scan c 1;
              snap_close c 1 );
        ];
    };
  ]

let find name = List.find_opt (fun sc -> sc.name = name) scenarios
