(** Deterministic cooperative scheduler over {!Masstree_core.Schedpoint}.

    Tasks are plain OCaml thunks run on one domain as effect-suspendable
    computations; every schedule point the OCC core passes through
    suspends the running task and hands control to a pluggable policy.
    Code between two schedule points executes atomically with respect to
    the other tasks, so a run is a pure function of the policy's choice
    sequence — exhaustive exploration, seeded random exploration and
    exact replay all follow from that.

    Shape mirrors [Faultsim]: the core declares named points, this
    module owns the control loop, scenario/oracle live next door. *)

type failure =
  | Task_exn of { task : string; exn : string; backtrace : string }
  | Deadlock of { waiting : (string * string) list }
      (** every unfinished task sat at a Spin point past the stall
          limit; [(task, point)] pairs locate the cycle *)
  | Out_of_steps of { steps : int }

val failure_to_string : failure -> string

type run = {
  steps : int;
  branches : int array;  (** pool arity at each branch point *)
  chosen : int array;    (** choice taken at each branch point *)
  failure : failure option;
  trace : (string * string) list;
      (** per suspension: (task, point); empty unless [record_trace] *)
}

val now : unit -> int
(** Logical clock: one tick per scheduler step.  Scenario operations
    bracket themselves with this to build oracle windows. *)

val reset_clock : unit -> unit

val run_one :
  ?max_steps:int ->
  ?record_trace:bool ->
  tasks:(string * (unit -> unit)) list ->
  pick:(branch:int -> pool:string array -> int) ->
  unit ->
  run
(** Run the tasks to completion under [pick].  [pick] is consulted only
    when ≥ 2 tasks are eligible; the pool is ordered with the
    previously-running task first, so choice 0 means "don't preempt".
    Out-of-range picks clamp to 0.  Tasks abandoned by a failure are
    unwound (their continuations discontinued) so protect-finalizers
    run. *)

(** {1 Exploration drivers} *)

type mk = unit -> (string * (unit -> unit)) list * (unit -> (unit, string) result)
(** Scenario factory: fresh tasks plus a post-condition finalizer.  The
    finalizer only runs after a clean run — a failed run can leak node
    locks, and post-conditions would hang on them. *)

type case = { ok : (unit, string) result; run : run }

val run_choices :
  mk:mk -> choices:int array -> ?max_steps:int -> ?record_trace:bool -> unit -> case
(** Replay: force the given prefix, default (no preemption) past its
    end.  [explore_exhaustive] failures are reproduced from exactly
    this. *)

type style = Uniform | Pct

val style_to_string : style -> string
val style_of_string : string -> style option

val run_random :
  mk:mk ->
  seed:int64 ->
  ?style:style ->
  ?max_steps:int ->
  ?record_trace:bool ->
  unit ->
  case
(** One seeded random schedule.  [Uniform] picks uniformly at every
    branch; [Pct] is probabilistic concurrency testing — random fixed
    task priorities plus 1–3 random change points, which concentrates
    probability on few-preemption bugs.  Same [mk], seed and style ⇒
    identical run. *)

type explore = {
  explored : int;
  exhaustive : bool;  (** the whole schedule tree closed within budget *)
  fail : (string * int array) option;
      (** first failure: message plus the choice prefix for
          {!run_choices} *)
}

val explore_exhaustive :
  mk:mk -> ?max_schedules:int -> ?max_steps:int -> unit -> explore
(** DFS by replay over choice prefixes.  Stops at the first failure or
    when [max_schedules] runs have been spent. *)

val choices_to_string : int array -> string
val choices_of_string : string -> int array
