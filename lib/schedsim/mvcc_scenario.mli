(** MVCC race scenarios: store-backed scripts interleaving writers,
    snapshot readers and the version pruner at the chain protocol's
    schedule points ([mvcc.*]; docs/MVCC.md).

    Operations run through {!Kvstore.Store} — version minting, horizon
    registration, chain install under the border lock, pruning — with
    unique int values encoded as a single column so the {!Oracle}
    interval checker applies unchanged.  Snapshot reads are recorded
    against the snapshot's {e open} window: a read at the pinned cut
    must be acceptable at some instant during the open, so a wrongly
    pruned (or torn) cut is a recorded oracle violation.  The finalizer
    additionally requires [mvcc_versions_live = 0] once every snapshot
    is closed and a prune pass has run — the satellite bound on
    retained versions. *)

type snap

type ctx = {
  store : Kvstore.Store.t;
  oracle : Oracle.t;
  mutable next_val : int;
  snaps : snap option array;  (** scenario snapshot slots (4) *)
  mutable stable : string list;
      (** prepopulated keys no task touches: snapshot scans must emit
          every one *)
}

(** Recording wrappers, mirroring {!Scenario}. *)

val put : ctx -> string -> unit
val remove : ctx -> string -> unit
val get : ctx -> string -> unit

val prune : ctx -> unit
(** Run a store prune pass (hits [mvcc.prune.pass]). *)

val snap_open : ctx -> int -> unit
(** Open a snapshot into the given slot, remembering its open window. *)

val snap_read : ctx -> int -> string -> unit
val snap_scan : ctx -> int -> unit
val snap_close : ctx -> int -> unit

val prepop : ctx -> string -> unit
(** Prepare-phase put, stamped at step 0. *)

val prestable : ctx -> string -> unit
(** {!prepop} plus registration in [stable]. *)

val k : int -> string
(** Re-exported {!Scenario.k}. *)

type t = {
  name : string;
  descr : string;
  prepare : ctx -> unit;
  tasks : (string * (ctx -> unit)) list;
}

val mk : t -> Sched.mk
(** Fresh store + oracle per run; the finalizer closes leftover
    snapshots, prunes, checks the versions-live bound, reads every key
    back and runs the oracle. *)

val scenarios : t list
val find : string -> t option
