(* Scenario library for schedule exploration.

   A scenario is a tiny multi-writer/multi-reader script over one tree:
   a [prepare] phase that runs before the scheduler takes control (its
   writes are stamped at step 0), and a handful of named tasks whose
   every tree operation is recorded in an {!Oracle} with
   scheduler-clock windows.  {!mk} packages one into the factory shape
   {!Sched.explore_exhaustive} / {!Sched.run_random} consume; the
   finalizer runs the structural check, epoch maintenance, a final
   read-back of every key, and the oracle.

   Keys: [k i] is exactly 8 bytes, so consecutive keys occupy distinct
   slices of one trie layer; [lk suffix] shares an 8-byte prefix with
   its siblings, forcing suffix storage and deeper-layer creation. *)

module Tree = Masstree_core.Tree

type ctx = {
  tree : int Tree.t;
  oracle : Oracle.t;
  mutable next_val : int;
}

let fresh ctx =
  let v = ctx.next_val in
  ctx.next_val <- v + 1;
  v

let k i = Printf.sprintf "k%06d;" i
let lk suffix = "PPPPPPPP" ^ suffix

(* Recording operation wrappers. *)

let put ctx key =
  let v = fresh ctx in
  let s = Sched.now () in
  let prev = Tree.put ctx.tree key v in
  let e = Sched.now () in
  let wid = Oracle.record_write ctx.oracle key (Some v) ~s ~e in
  Oracle.record_read ctx.oracle key prev ~s ~e ~exclude:wid
    ~what:(Printf.sprintf "put %S prev" key)

let remove ctx key =
  let s = Sched.now () in
  let prev = Tree.remove ctx.tree key in
  let e = Sched.now () in
  let wid = Oracle.record_write ctx.oracle key None ~s ~e in
  Oracle.record_read ctx.oracle key prev ~s ~e ~exclude:wid
    ~what:(Printf.sprintf "remove %S prev" key)

let get ctx key =
  let s = Sched.now () in
  let r = Tree.get ctx.tree key in
  let e = Sched.now () in
  Oracle.record_read ctx.oracle key r ~s ~e ~exclude:(-1)
    ~what:(Printf.sprintf "get %S" key)

let multi_get ctx keys =
  let a = Array.of_list keys in
  let s = Sched.now () in
  let rs = Tree.multi_get ctx.tree a in
  let e = Sched.now () in
  Array.iteri
    (fun i key ->
      Oracle.record_read ctx.oracle key rs.(i) ~s ~e ~exclude:(-1)
        ~what:(Printf.sprintf "multi_get %S" key))
    a

let multi_get_pipelined ctx keys =
  let a = Array.of_list keys in
  let s = Sched.now () in
  let rs = Tree.multi_get_pipelined ctx.tree a in
  let e = Sched.now () in
  Array.iteri
    (fun i key ->
      Oracle.record_read ctx.oracle key rs.(i) ~s ~e ~exclude:(-1)
        ~what:(Printf.sprintf "multi_get_pipelined %S" key))
    a

let scan ?start ?stop ?(limit = max_int) ctx =
  let emits = ref [] in
  let s = Sched.now () in
  let count =
    Tree.scan ctx.tree ?start ?stop ~limit (fun key v ->
        emits :=
          { Oracle.ekey = key; eval_ = v; estep = Sched.now () } :: !emits)
  in
  let e = Sched.now () in
  Oracle.record_scan ctx.oracle ~rev:false ~start ~stop ~limit
    ~emits:(List.rev !emits) ~count ~s ~e

let scan_rev ?start ?stop ?(limit = max_int) ctx =
  let emits = ref [] in
  let s = Sched.now () in
  let count =
    Tree.scan_rev ctx.tree ?start ?stop ~limit (fun key v ->
        emits :=
          { Oracle.ekey = key; eval_ = v; estep = Sched.now () } :: !emits)
  in
  let e = Sched.now () in
  Oracle.record_scan ctx.oracle ~rev:true ~start ~stop ~limit
    ~emits:(List.rev !emits) ~count ~s ~e

let maintain ctx = Tree.maintain ctx.tree

(* Prepare-phase helper: runs with the scheduler disabled, stamped at
   step 0 (the clock was just reset, and scheduled steps start at 1). *)
let prepop ctx key =
  let v = fresh ctx in
  ignore (Tree.put ctx.tree key v);
  ignore (Oracle.record_write ctx.oracle key (Some v) ~s:0 ~e:0)

(* Prepare-phase removal: shapes a border's fill level before the
   scheduler takes control (e.g. to park a node one remove above the
   coalesce threshold). *)
let preremove ctx key =
  ignore (Tree.remove ctx.tree key);
  ignore (Oracle.record_write ctx.oracle key None ~s:0 ~e:0)

type t = {
  name : string;
  descr : string;
  prepare : ctx -> unit;
  tasks : (string * (ctx -> unit)) list;
}

let mk (sc : t) : Sched.mk =
 fun () ->
  Sched.reset_clock ();
  let ctx = { tree = Tree.create (); oracle = Oracle.create (); next_val = 1 } in
  sc.prepare ctx;
  let tasks = List.map (fun (n, f) -> (n, fun () -> f ctx)) sc.tasks in
  let finalize () =
    let errs = ref [] in
    (match Tree.check ctx.tree with
    | Ok () -> ()
    | Error m -> errs := ("structural: " ^ m) :: !errs);
    Tree.maintain ctx.tree;
    (match Tree.check ctx.tree with
    | Ok () -> ()
    | Error m -> errs := ("structural after maintain: " ^ m) :: !errs);
    let fin = Sched.now () + 1 in
    List.iter
      (fun key ->
        let r = Tree.get ctx.tree key in
        Oracle.record_read ctx.oracle key r ~s:fin ~e:fin ~exclude:(-1)
          ~what:(Printf.sprintf "final get %S" key))
      (Oracle.keys ctx.oracle);
    (match Oracle.check ctx.oracle with
    | Ok () -> ()
    | Error ms -> errs := !errs @ ms);
    match !errs with [] -> Ok () | es -> Error (String.concat "; " es)
  in
  (tasks, finalize)

(* ------------------------------------------------------------------ *)
(* The scenario library.                                               *)
(* ------------------------------------------------------------------ *)

(* Tight two-task scripts keep the schedule tree small enough for the
   exhaustive driver to close; the bigger scripts lean on PCT/uniform
   seeds.  Prepare-phase key counts are chosen against width 14: 14
   sequential inserts fill one border, the 15th splits it; ~210 fill the
   root interior so the next split grows the tree. *)

let scenarios : t list =
  [
    {
      name = "replace-vs-get";
      descr = "value replacement in place races a lock-free reader";
      prepare = (fun c -> prepop c (k 1); prepop c (k 2));
      tasks =
        [ ("writer", fun c -> put c (k 1)); ("reader", fun c -> get c (k 1)) ];
    };
    {
      name = "insert-vs-get";
      descr = "permutation publish races point reads of old and new keys";
      prepare = (fun c -> for i = 0 to 3 do prepop c (k (2 * i)) done);
      tasks =
        [
          ("writer", fun c -> put c (k 5));
          ("reader", fun c -> get c (k 5); get c (k 4));
        ];
    };
    {
      name = "writers-contend";
      descr = "two writers on one border, reader validating against both";
      prepare = (fun c -> for i = 0 to 2 do prepop c (k (10 * i)) done);
      tasks =
        [
          ("w1", fun c -> put c (k 5); put c (k 15));
          ("w2", fun c -> put c (k 25); remove c (k 10));
          ("reader", fun c -> get c (k 10); get c (k 25));
        ];
    };
    {
      name = "split-vs-get";
      descr = "border split migrates keys right while readers chase them";
      prepare = (fun c -> for i = 0 to 13 do prepop c (k (2 * i)) done);
      tasks =
        [
          ("writer", fun c -> put c (k 13));
          ("reader", fun c -> get c (k 20); get c (k 13));
        ];
    };
    {
      name = "split-vs-scan";
      descr = "scan must not lose keys migrating right during a split";
      prepare = (fun c -> for i = 0 to 13 do prepop c (k (2 * i)) done);
      tasks =
        [
          ("writer", fun c -> put c (k 13));
          ("scanner", fun c -> scan c; scan ~limit:5 c);
        ];
    };
    {
      name = "split-vs-scan-rev";
      descr = "descending scan against a concurrent split";
      prepare = (fun c -> for i = 0 to 13 do prepop c (k (2 * i)) done);
      tasks =
        [
          ("writer", fun c -> put c (k 13));
          ("scanner", fun c -> scan_rev c; scan_rev ~limit:5 c);
        ];
    };
    {
      name = "remove-vs-scan";
      descr = "scan while the right border empties, unlinks and dies";
      prepare = (fun c -> for i = 0 to 19 do prepop c (k i) done);
      tasks =
        [
          ( "remover",
            fun c -> for i = 14 to 19 do remove c (k i) done );
          ("scanner", fun c -> scan c; get c (k 16));
        ];
    };
    {
      name = "remove-vs-scan-rev";
      descr = "descending scan racing node emptying and unlink";
      prepare = (fun c -> for i = 0 to 19 do prepop c (k i) done);
      tasks =
        [
          ( "remover",
            fun c -> for i = 14 to 19 do remove c (k i) done );
          ("scanner", fun c -> scan_rev c; get c (k 14));
        ];
    };
    {
      name = "slot-reuse-vs-get";
      descr = "remove then re-insert reuses a stale slot under a reader";
      prepare = (fun c -> for i = 1 to 4 do prepop c (k i) done);
      tasks =
        [
          ("writer", fun c -> remove c (k 2); put c (k 2));
          ("reader", fun c -> get c (k 2); get c (k 3); get c (k 2));
        ];
    };
    {
      name = "multiget-vs-insert-wave";
      descr = "batched multi_get waves race an insert burst";
      prepare = (fun c -> for i = 0 to 3 do prepop c (k (2 * i)) done);
      tasks =
        [
          ("writer", fun c -> put c (k 1); put c (k 3); put c (k 5));
          ( "reader",
            fun c -> multi_get c [ k 0; k 1; k 2; k 3; k 4; k 5; k 6 ] );
        ];
    };
    {
      name = "pipelined-batch-vs-split";
      descr = "software-pipelined group get races a border split and hops a layer";
      (* 14 two-apart keys fill one border; the writer's put (k 13) splits
         it mid-batch.  The prepared lk pair gives the batch a lookup that
         must hop into a trie layer ([tree.pipeline.layer]); the split's
         root replacement makes a flight's [stable_root] raise and
         re-enter the pipeline ([tree.pipeline.restart]). *)
      prepare =
        (fun c ->
          for i = 0 to 13 do prepop c (k (2 * i)) done;
          prepop c (lk "alpha");
          prepop c (lk "beta"));
      tasks =
        [
          ("writer", fun c -> put c (k 13));
          ( "reader",
            fun c ->
              multi_get_pipelined c [ k 13; k 20; lk "alpha"; k 9 ] );
        ];
    };
    {
      name = "coalesce-vs-pipelined-get";
      descr = "pipelined batch descends into a border being merged away";
      (* Same prepared shape as the coalesce family: the remover's
         [remove (k 4)] merges the right sibling into the left, so a
         pipelined flight can stabilize a border whose version goes
         deleted under it and must restart from the root in-pipeline. *)
      prepare =
        (fun c ->
          for i = 0 to 19 do prepop c (k i) done;
          for i = 5 to 13 do preremove c (k i) done);
      tasks =
        [
          ("remover", fun c -> remove c (k 4));
          ( "reader",
            fun c -> multi_get_pipelined c [ k 16; k 2; k 14 ] );
        ];
    };
    {
      name = "layer-create-vs-get";
      descr = "suffix clash pushes a new trie layer under a reader";
      prepare = (fun c -> prepop c (lk "alpha"); prepop c (k 1));
      tasks =
        [
          ("writer", fun c -> put c (lk "beta"));
          ("reader", fun c -> get c (lk "alpha"); get c (lk "beta"));
        ];
    };
    {
      name = "layer-collapse-vs-get";
      descr = "maintenance collapses an emptied layer while readers descend";
      prepare =
        (fun c ->
          prepop c (lk "alpha");
          prepop c (lk "beta");
          prepop c (k 1));
      tasks =
        [
          ( "remover",
            fun c ->
              remove c (lk "alpha");
              remove c (lk "beta");
              maintain c );
          ( "reader",
            fun c ->
              get c (lk "alpha");
              get c (k 1);
              get c (lk "beta") );
        ];
    };
    {
      name = "deep-split";
      descr = "border split ascends into a full root interior and grows the tree";
      prepare = (fun c -> for i = 0 to 209 do prepop c (k i) done);
      tasks =
        [
          ("writer", fun c -> put c (k 210); put c (k 211));
          ( "reader",
            fun c -> get c (k 209); get c (k 100); get c (k 210) );
        ];
    };
    {
      name = "unlink-contend";
      descr = "node unlink needs the left sibling's lock while a split holds it";
      (* 15 sequential keys: left border k0..k13 (full), right k14 alone.
         The writer's put lands in the full left border and splits it — a
         long locked window — while the remover empties the right border,
         whose unlink must take that same left-border lock. *)
      prepare = (fun c -> for i = 0 to 14 do prepop c (k i) done);
      tasks =
        [
          ("writer", fun c -> put c "k000007~");
          ("remover", fun c -> remove c (k 14));
        ];
    };
    (* Coalesce scenarios share one prepared shape: 20 sequential keys
       split into left = k0..k13, right = k14..k19 (same parent), then
       prepare-phase removes thin the left border to 5 entries — one
       in-task remove away from the merge threshold.  The remover's
       [remove (k 4)] drops it to 4 and absorbs the right sibling under
       the split protocol ([tree.merge.*]); the sibling's storage goes
       through [tree.pool.retire]/[tree.pool.free]. *)
    {
      name = "coalesce-vs-get";
      descr = "leaf merge migrates the right sibling under point readers";
      prepare =
        (fun c ->
          for i = 0 to 19 do prepop c (k i) done;
          for i = 5 to 13 do preremove c (k i) done);
      tasks =
        [
          ("remover", fun c -> remove c (k 4));
          ("reader", fun c -> get c (k 16); get c (k 2); get c (k 14));
        ];
    };
    {
      name = "coalesce-vs-scan";
      descr = "forward and reverse scans race a leaf merge";
      prepare =
        (fun c ->
          for i = 0 to 19 do prepop c (k i) done;
          for i = 5 to 13 do preremove c (k i) done);
      tasks =
        [
          ("remover", fun c -> remove c (k 4));
          ("scanner", fun c -> scan c; scan_rev c);
        ];
    };
    {
      name = "coalesce-vs-insert";
      descr =
        "insert (with a fresh suffix blob, first of its size class) races \
         a merge into the same border";
      (* The lk key sorts below the k keys, so the writer's insert targets
         the merging left border; its suffix is the run's first blob
         allocation, so the put crosses [tree.pool.refill]. *)
      prepare =
        (fun c ->
          for i = 0 to 19 do prepop c (k i) done;
          for i = 5 to 13 do preremove c (k i) done);
      tasks =
        [
          ("remover", fun c -> remove c (k 4));
          ("writer", fun c -> put c (lk "zz"));
        ];
    };
    {
      name = "coalesce-gc";
      descr = "epoch drain frees merged-away storage while a reader validates";
      prepare =
        (fun c ->
          for i = 0 to 19 do prepop c (k i) done;
          for i = 5 to 13 do preremove c (k i) done);
      tasks =
        [
          ("remover", fun c -> remove c (k 4); maintain c);
          ("reader", fun c -> get c (k 15); get c (k 19));
        ];
    };
    {
      name = "quiesce-vs-get";
      descr = "epoch quiesce waits out a reader pinned mid-descent";
      prepare =
        (fun c ->
          prepop c (lk "alpha");
          prepop c (lk "beta");
          prepop c (k 1));
      tasks =
        [
          ("reader", fun c -> get c (lk "alpha"); get c (k 1));
          ("maintainer", fun c -> maintain c);
        ];
    };
  ]

let find name = List.find_opt (fun sc -> sc.name = name) scenarios
