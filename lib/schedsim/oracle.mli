(** Sequential oracle: per-key linearizability over logical-time
    windows.

    Scenario operations record themselves here with the scheduler-clock
    values at invocation and return.  Writes carry unique values, so a
    read identifies the write it observed and checking reduces to
    interval reasoning — a read [r] over [s, e] is acceptable iff some
    write [w] with [w]'s value began before [e] and no other write fully
    separates [w] from [s].  Scans are additionally checked for
    ordering, bounds, per-emission validity and completeness (a key
    whose acceptable set over the whole scan window is a single present
    value must be emitted, modulo the [limit] cutoff). *)

type value = int

type t

val create : unit -> t

val record_write : t -> string -> value option -> s:int -> e:int -> int
(** [record_write o key v ~s ~e] records a put ([Some v]) or remove
    ([None]) spanning steps [s..e]; returns the write id, for use as a
    prev-read's [exclude]. *)

val record_read :
  t -> string -> value option -> s:int -> e:int -> exclude:int -> what:string -> unit
(** [exclude] is the write id whose own effect the read must not be
    matched against (a put's prev-result can't see itself); [-1] for
    plain gets.  [what] labels the failure message. *)

type emit = { ekey : string; eval_ : value; estep : int }

val record_scan :
  t ->
  rev:bool ->
  start:string option ->
  stop:string option ->
  limit:int ->
  emits:emit list ->
  count:int ->
  s:int ->
  e:int ->
  unit

val keys : t -> string list
(** Every key ever written (sorted) — the finalizer reads each back for
    a post-quiescence check. *)

val check : t -> (unit, string list) result
(** Validate every recorded read and scan against the write history. *)
