(** Abstract file I/O for the persist stack.

    Everything in [lib/persist] that touches the disk goes through one of
    these records, so the same code runs against {!real} (a thin [Unix]
    wrapper — the default everywhere, production behavior unchanged) or
    against {!Sim} (an in-memory disk model that distinguishes durable
    from volatile bytes and can lose or tear un-synced writes at a
    simulated crash).  The indirection is one closure call per I/O
    operation, which is noise next to the syscall it wraps. *)

type file = {
  write : bytes -> int -> int -> int;
      (** [write buf off len] appends up to [len] bytes at the current
          position and returns how many were written (callers must loop —
          see {!write_all}). *)
  fsync : unit -> unit;  (** Make everything written so far durable. *)
  close : unit -> unit;
}

type t = {
  open_out : string -> file;
      (** Open for writing, creating or truncating ([O_WRONLY|O_CREAT|O_TRUNC]). *)
  read_file : string -> string;
      (** Whole-file contents.  Raises [Sys_error] if the file does not exist. *)
  exists : string -> bool;
  mkdir : string -> unit;  (** Create a directory; succeeds if it already exists. *)
  readdir : string -> string array;  (** Entry basenames, like [Sys.readdir]. *)
  remove : string -> unit;  (** Delete a file (or an empty simulated directory). *)
  rename : string -> string -> unit;
}

val real : t
(** The production implementation: direct [Unix]/[Sys] calls with the
    exact flag set the persist stack has always used. *)

val write_all : file -> string -> unit
(** Loop [file.write] until the whole string is written. *)
