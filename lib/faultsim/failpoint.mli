(** Named, deterministic fault-injection points.

    The persist stack declares its crash windows statically with
    {!define} (e.g. ["log.flush.after_write"], ["ckpt.manifest.begin"])
    and calls {!hit} when execution passes through one.  Disarmed — the
    permanent production state — a hit is a single atomic increment.  A
    torture harness arms a point with {!arm} to either simulate a process
    crash (raise {!Crash} after running the crash hook, which freezes the
    simulated disk so no post-crash write can leak into durable state) or
    inject an I/O error ([Unix.EIO]).

    Hit counting is per point and global; [arm ~at:n] fires on the n-th
    hit, which makes a crash-point enumeration deterministic for a
    deterministic workload. *)

type t
(** A registered point (get one with {!define}). *)

exception Crash of string
(** Simulated process death at the named point.  Nothing after this point
    executed; the torture harness catches it, applies the simulated
    disk's crash loss model, and recovers. *)

type action =
  | Crash_process  (** run the crash hook, then raise {!Crash}. *)
  | Inject_eio  (** raise [Unix.Unix_error (EIO, "faultsim", point)]. *)

val define : string -> t
(** Register (or look up) the point with this name.  Idempotent; points
    are expected to be defined at module-initialization time so that
    {!names} enumerates every crash window in the linked program. *)

val name : t -> string

val hit : t -> unit
(** Mark execution passing through the point; fires its armed action if
    the hit count matches. *)

val names : unit -> string list
(** All defined points, sorted. *)

val hits : string -> int
(** Times the named point has been hit since the last {!reset}. *)

val arm : string -> ?every:int -> at:int -> action -> unit
(** Fire [action] on the [at]-th hit (1-based) of the named point; with
    [every:k], also on every k-th hit after that.  Defines the point if
    needed.  Replaces any previous arming of the point. *)

val disarm_all : unit -> unit

val reset : unit -> unit
(** Disarm everything and zero all hit counters. *)

val set_crash_hook : (string -> unit) -> unit
(** Called with the point name just before {!Crash} is raised — from
    whichever thread hit the point — so the harness can freeze the
    simulated disk before any concurrent thread writes again. *)

val clear_crash_hook : unit -> unit
