exception Crash of string

type action = Crash_process | Inject_eio

type spec = { at : int; every : int option; action : action }

type t = { pname : string; count : int Atomic.t; mutable spec : spec option }

let registry : (string, t) Hashtbl.t = Hashtbl.create 64

let reg_lock = Mutex.create ()

(* Fast-path gate: number of currently armed points.  When zero (always,
   in production) a hit is one atomic increment and one atomic load. *)
let armed = Atomic.make 0

let crash_hook : (string -> unit) ref = ref (fun _ -> ())

let set_crash_hook f = crash_hook := f

let clear_crash_hook () = crash_hook := fun _ -> ()

let define pname =
  Mutex.lock reg_lock;
  let p =
    match Hashtbl.find_opt registry pname with
    | Some p -> p
    | None ->
        let p = { pname; count = Atomic.make 0; spec = None } in
        Hashtbl.add registry pname p;
        p
  in
  Mutex.unlock reg_lock;
  p

let name p = p.pname

let fire p spec n =
  let due =
    n = spec.at
    ||
    match spec.every with
    | Some k -> n > spec.at && (n - spec.at) mod k = 0
    | None -> false
  in
  if due then begin
    match spec.action with
    | Crash_process ->
        !crash_hook p.pname;
        raise (Crash p.pname)
    | Inject_eio -> raise (Unix.Unix_error (Unix.EIO, "faultsim", p.pname))
  end

let hit p =
  let n = 1 + Atomic.fetch_and_add p.count 1 in
  if Atomic.get armed > 0 then
    match p.spec with None -> () | Some spec -> fire p spec n

let names () =
  Mutex.lock reg_lock;
  let ns = Hashtbl.fold (fun n _ acc -> n :: acc) registry [] in
  Mutex.unlock reg_lock;
  List.sort compare ns

let hits pname =
  Mutex.lock reg_lock;
  let n =
    match Hashtbl.find_opt registry pname with
    | Some p -> Atomic.get p.count
    | None -> 0
  in
  Mutex.unlock reg_lock;
  n

let arm pname ?every ~at action =
  let p = define pname in
  Mutex.lock reg_lock;
  if p.spec = None then Atomic.incr armed;
  p.spec <- Some { at; every; action };
  Mutex.unlock reg_lock

let disarm_all () =
  Mutex.lock reg_lock;
  Hashtbl.iter
    (fun _ p ->
      if p.spec <> None then begin
        p.spec <- None;
        Atomic.decr armed
      end)
    registry;
  Mutex.unlock reg_lock

let reset () =
  disarm_all ();
  Mutex.lock reg_lock;
  Hashtbl.iter (fun _ p -> Atomic.set p.count 0) registry;
  Mutex.unlock reg_lock
