(** In-memory disk model with crash semantics.

    Each file carries its full written content plus a durable watermark:
    bytes before the watermark survived an [fsync]; bytes after it are
    volatile (page cache).  {!crash} simulates a machine/process crash:
    per file, the volatile suffix is either dropped entirely, kept
    entirely, or torn at an arbitrary byte — chosen deterministically
    from the model's seed — and every handle opened before the crash
    goes stale (its writes and fsyncs silently do nothing, like a dead
    process's).  Metadata (create, rename, remove, mkdir) is modeled as
    immediately durable, which is the adversarial direction for a
    durability test: deletions take effect even if the data they orphan
    was never superseded.

    {!freeze} (normally invoked from the {!Failpoint} crash hook) stops
    all mutation instantly, so threads still running at the simulated
    crash instant — checkpoint part writers, the group-commit flusher —
    cannot move durable state after the "process" died. *)

type t

val create : seed:int64 -> t

val vfs : t -> Vfs.t

val freeze : t -> unit
(** Stop accepting mutation (writes, fsyncs, creates, deletes become
    no-ops).  Idempotent; {!crash} unfreezes. *)

val crash : t -> unit
(** Apply the loss model to every file's volatile bytes, mark all
    existing handles stale, and unfreeze: the disk now shows exactly the
    state a restarted process would find. *)

val set_write_chunk : t -> int option -> unit
(** [set_write_chunk t (Some k)] makes every write return at most [k]
    bytes — short-write injection to exercise write loops.  [None]
    restores full writes. *)

val set_bit_flips : t -> bool -> unit
(** Enable the bit-flip corruption model (default off, so existing
    seeds replay unchanged): at {!crash}, half the affected files get
    one bit of a random byte in the {e surviving volatile} suffix
    flipped — an in-flight write scrambled mid-transfer.  Durable
    (fsynced) bytes are never corrupted.  Exercises the CRC framing:
    recovery and replica apply must detect the damaged record instead
    of replaying garbage. *)

val flipped_bits : t -> int
(** Bits flipped by the corruption model across all crashes so far. *)

val durable_size : t -> string -> int
(** Durable bytes of a file (0 if absent). *)

val total_size : t -> string -> int
(** Written bytes including the volatile tail (0 if absent). *)

type stats = { files : int; writes : int; fsyncs : int; crashes : int }

val stats : t -> stats
