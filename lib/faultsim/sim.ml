type sfile = { mutable data : Buffer.t; mutable synced : int }

type t = {
  lock : Mutex.t;
  files : (string, sfile) Hashtbl.t;
  dirs : (string, unit) Hashtbl.t;
  rng : Xutil.Rng.t;
  mutable frozen : bool;
  mutable generation : int; (* bumped at crash; handles check it *)
  mutable write_chunk : int option;
  mutable bit_flips : bool;
  mutable writes : int;
  mutable fsyncs : int;
  mutable ncrashes : int;
  mutable nflipped : int;
}

type stats = { files : int; writes : int; fsyncs : int; crashes : int }

let create ~seed =
  {
    lock = Mutex.create ();
    files = Hashtbl.create 32;
    dirs = Hashtbl.create 8;
    rng = Xutil.Rng.create seed;
    frozen = false;
    generation = 0;
    write_chunk = None;
    bit_flips = false;
    writes = 0;
    fsyncs = 0;
    ncrashes = 0;
    nflipped = 0;
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let freeze t = with_lock t (fun () -> t.frozen <- true)

let set_write_chunk t k = with_lock t (fun () -> t.write_chunk <- k)

let set_bit_flips t on = with_lock t (fun () -> t.bit_flips <- on)

let flipped_bits t = with_lock t (fun () -> t.nflipped)

(* Loss model for one file's volatile suffix.  Three deterministic-from-
   seed regimes so a sweep over variants covers "everything unsynced
   lost", "everything survived" (crash before the cache was dropped), and
   "torn at an arbitrary byte" (the interesting one: a record cut in
   half). *)
let surviving_volatile t vol =
  if vol = 0 then 0
  else
    match Xutil.Rng.int t.rng 4 with
    | 0 -> 0
    | 1 -> vol
    | _ -> Xutil.Rng.int t.rng (vol + 1)

let crash t =
  with_lock t (fun () ->
      t.ncrashes <- t.ncrashes + 1;
      t.generation <- t.generation + 1;
      t.frozen <- false;
      (* Sort for determinism: hash-table order must not leak into the
         per-file RNG draws. *)
      let names = Hashtbl.fold (fun n _ a -> n :: a) t.files [] in
      List.iter
        (fun n ->
          let f = Hashtbl.find t.files n in
          let len = Buffer.length f.data in
          let keep = f.synced + surviving_volatile t (len - f.synced) in
          (* Bit-flip model (off by default so existing seeds draw the
             same RNG stream): half the crashes corrupt one bit of a
             random byte in the surviving *volatile* suffix — an
             in-flight write scrambled mid-DMA.  Durable bytes are never
             touched: fsynced data staying intact is the contract the
             rest of the harness verifies. *)
          let flip_at =
            if t.bit_flips && keep > f.synced && Xutil.Rng.int t.rng 2 = 0 then
              Some (f.synced + Xutil.Rng.int t.rng (keep - f.synced))
            else None
          in
          if keep < len || flip_at <> None then begin
            let surv = Bytes.of_string (Buffer.sub f.data 0 keep) in
            (match flip_at with
            | Some i ->
                Bytes.set surv i
                  (Char.chr (Char.code (Bytes.get surv i) lxor (1 lsl Xutil.Rng.int t.rng 8)));
                t.nflipped <- t.nflipped + 1
            | None -> ());
            let b = Buffer.create (max 64 keep) in
            Buffer.add_bytes b surv;
            f.data <- b
          end;
          f.synced <- min f.synced keep)
        (List.sort compare names))

let open_out t path =
  with_lock t (fun () ->
      let gen = t.generation in
      if not t.frozen then
        Hashtbl.replace t.files path { data = Buffer.create 256; synced = 0 };
      let live () = (not t.frozen) && gen = t.generation in
      {
        Vfs.write =
          (fun buf off len ->
            with_lock t (fun () ->
                if not (live ()) then len (* dead process: bytes go nowhere *)
                else begin
                  let n =
                    match t.write_chunk with
                    | Some k -> max 1 (min k len)
                    | None -> len
                  in
                  (match Hashtbl.find_opt t.files path with
                  | Some f -> Buffer.add_subbytes f.data buf off n
                  | None -> ());
                  t.writes <- t.writes + 1;
                  n
                end));
        fsync =
          (fun () ->
            with_lock t (fun () ->
                if live () then begin
                  (match Hashtbl.find_opt t.files path with
                  | Some f -> f.synced <- Buffer.length f.data
                  | None -> ());
                  t.fsyncs <- t.fsyncs + 1
                end));
        close = (fun () -> ());
      })

let read_file t path =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.files path with
      | Some f -> Buffer.contents f.data
      | None -> raise (Sys_error (path ^ ": No such file or directory")))

let exists t path =
  with_lock t (fun () -> Hashtbl.mem t.files path || Hashtbl.mem t.dirs path)

let mkdir t path =
  with_lock t (fun () -> if not t.frozen then Hashtbl.replace t.dirs path ())

let readdir t path =
  with_lock t (fun () ->
      let under n = Filename.dirname n = path in
      let acc = ref [] in
      Hashtbl.iter (fun n _ -> if under n then acc := Filename.basename n :: !acc) t.files;
      Hashtbl.iter (fun n _ -> if under n then acc := Filename.basename n :: !acc) t.dirs;
      Array.of_list (List.sort compare !acc))

let remove t path =
  with_lock t (fun () ->
      if not t.frozen then begin
        Hashtbl.remove t.files path;
        Hashtbl.remove t.dirs path
      end)

let rename t src dst =
  with_lock t (fun () ->
      if not t.frozen then begin
        match Hashtbl.find_opt t.files src with
        | Some f ->
            Hashtbl.remove t.files src;
            Hashtbl.replace t.files dst f
        | None -> (
            match Hashtbl.find_opt t.dirs src with
            | Some () ->
                Hashtbl.remove t.dirs src;
                Hashtbl.replace t.dirs dst ()
            | None -> raise (Sys_error (src ^ ": No such file or directory")))
      end)

let vfs t =
  {
    Vfs.open_out = open_out t;
    read_file = read_file t;
    exists = exists t;
    mkdir = mkdir t;
    readdir = readdir t;
    remove = remove t;
    rename = rename t;
  }

let durable_size t path =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.files path with Some f -> f.synced | None -> 0)

let total_size t path =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.files path with
      | Some f -> Buffer.length f.data
      | None -> 0)

let stats t =
  with_lock t (fun () ->
      {
        files = Hashtbl.length t.files;
        writes = t.writes;
        fsyncs = t.fsyncs;
        crashes = t.ncrashes;
      })
