type file = {
  write : bytes -> int -> int -> int;
  fsync : unit -> unit;
  close : unit -> unit;
}

type t = {
  open_out : string -> file;
  read_file : string -> string;
  exists : string -> bool;
  mkdir : string -> unit;
  readdir : string -> string array;
  remove : string -> unit;
  rename : string -> string -> unit;
}

let real =
  {
    open_out =
      (fun path ->
        let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
        {
          write = (fun buf off len -> Unix.write fd buf off len);
          fsync = (fun () -> Unix.fsync fd);
          close = (fun () -> Unix.close fd);
        });
    read_file =
      (fun path ->
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic)));
    exists = Sys.file_exists;
    mkdir =
      (fun path ->
        try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    readdir = Sys.readdir;
    remove = Sys.remove;
    rename = Sys.rename;
  }

let write_all file s =
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then begin
      let n = file.write b off (len - off) in
      go (off + n)
    end
  in
  go 0
