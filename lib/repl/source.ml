(* Primary side of log-shipping replication (docs/REPLICATION.md).

   A subscription has two phases.  Bootstrap: the primary captures every
   log's tail cursor, THEN pins a per-store MVCC snapshot — the overlap
   means a write racing the subscription can be delivered twice (once in
   the snapshot, once in the tail), never zero times; the per-key version
   guard on the replica's apply path dedups.  The snapshot is streamed
   as synthesized {!Persist.Logrec.Put} frames carrying each entry's
   resolved version.  Steady state: frames are drained from the loggers'
   tail rings, CRC framing intact, and shipped verbatim.

   Sessions are pull-driven and not resumable: a replica that loses its
   connection re-subscribes from scratch.  A session whose cursor falls
   off the bounded tail ring (slow or dead replica) is evicted — the
   next pull answers [Repl_restart] and the replica rebuilds.  Ring
   retention is capped, so a dead replica can never pin memory. *)

module Store = Kvstore.Store
module Logger = Persist.Logger
module Logrec = Persist.Logrec
module P = Kvserver.Protocol

let reg = Obs.Registry.global
let ship_records_c = Obs.Registry.counter reg "repl.ship_records"
let ship_bytes_c = Obs.Registry.counter reg "repl.ship_bytes"
let snap_records_c = Obs.Registry.counter reg "repl.snapshot_records"
let snap_bytes_c = Obs.Registry.counter reg "repl.snapshot_bytes"
let restarts_c = Obs.Registry.counter reg "repl.session_restarts"

(* Crash windows: the primary dying mid-ship / mid-ack is the failover
   scenario the promotion safety argument covers. *)
let fp_ship_batch = Faultsim.Failpoint.define "repl.ship.batch"
let fp_ship_ack = Faultsim.Failpoint.define "repl.ship.ack"

type session = {
  sid : int64;
  cursors : int array; (* per-log tail cursor, captured before the pin *)
  snaps : Store.Snapshot.snap option array; (* bootstrap pins; None = drained *)
  mutable snap_idx : int;
  mutable resume : string; (* next start key within snaps.(snap_idx) *)
  mutable bootstrapping : bool;
  mutable acked : int64 array; (* per-store applied clock from last ack *)
}

type t = {
  stores : Store.t array;
  logs : Logger.t array;
  route : string -> int;
  lock : Mutex.t;
  sessions : (int64, session) Hashtbl.t;
  mutable next_sid : int64;
  snap_chunk : int; (* bootstrap entries scanned per inner round *)
}

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let create ?(tail_cap_bytes = 1 lsl 24) ?(snap_chunk = 512) ~route ~logs stores =
  Array.iter (Logger.enable_tail ~cap_bytes:tail_cap_bytes) logs;
  {
    stores;
    logs;
    route;
    lock = Mutex.create ();
    sessions = Hashtbl.create 4;
    next_sid = 1L;
    snap_chunk = max 1 snap_chunk;
  }

let close_session_snaps s =
  Array.iteri
    (fun i snap ->
      match snap with
      | Some sn ->
          Store.Snapshot.close sn;
          s.snaps.(i) <- None
      | None -> ())
    s.snaps

let open_session t =
  with_lock t (fun () ->
      (* Cursors first, snapshot second: anything written in between is
         in both feeds (deduped by version), never in neither. *)
      let cursors = Array.map Logger.tail_next_seq t.logs in
      let snaps = Array.map (fun st -> Some (Store.Snapshot.open_ st)) t.stores in
      let versions =
        Array.map
          (function Some sn -> Store.Snapshot.version sn | None -> 0L)
          snaps
      in
      let sid = t.next_sid in
      t.next_sid <- Int64.add t.next_sid 1L;
      Hashtbl.replace t.sessions sid
        {
          sid;
          cursors;
          snaps;
          snap_idx = 0;
          resume = "";
          bootstrapping = true;
          acked = Array.map (fun _ -> 0L) t.stores;
        };
      (sid, versions))

let evict t s =
  close_session_snaps s;
  Hashtbl.remove t.sessions s.sid;
  Obs.Registry.incr restarts_c

let pull_snapshot t s ~max_bytes =
  let frames = ref [] and bytes = ref 0 and records = ref 0 in
  let continue_ = ref true in
  while !continue_ && s.snap_idx < Array.length t.stores do
    match s.snaps.(s.snap_idx) with
    | None ->
        s.snap_idx <- s.snap_idx + 1;
        s.resume <- ""
    | Some snap ->
        let last = ref "" in
        let n =
          Store.Snapshot.getrange_versioned snap ~start:s.resume ~limit:t.snap_chunk
            (fun k v cols ->
              let fr =
                Logrec.encode_string
                  (Logrec.Put { key = k; version = v; timestamp = 0L; columns = cols })
              in
              frames := fr :: !frames;
              bytes := !bytes + String.length fr;
              incr records;
              last := k)
        in
        if n = 0 then begin
          Store.Snapshot.close snap;
          s.snaps.(s.snap_idx) <- None;
          s.snap_idx <- s.snap_idx + 1;
          s.resume <- ""
        end
        else begin
          s.resume <- !last ^ "\x00";
          if !bytes >= max_bytes then continue_ := false
        end
  done;
  let done_ = s.snap_idx >= Array.length t.stores in
  if done_ then s.bootstrapping <- false;
  Obs.Registry.add snap_records_c !records;
  Obs.Registry.add snap_bytes_c !bytes;
  `Records (P.Repl_snapshot, List.rev !frames, done_)

let pull_tail t s ~max_bytes =
  let frames = ref [] and bytes = ref 0 and records = ref 0 and gone = ref false in
  Array.iteri
    (fun i log ->
      if (not !gone) && !bytes < max_bytes then
        match Logger.read_tail log ~from:s.cursors.(i) ~max_bytes:(max_bytes - !bytes) with
        | `Gone -> gone := true
        | `Ok (fs, next) ->
            s.cursors.(i) <- next;
            List.iter
              (fun f ->
                bytes := !bytes + String.length f;
                incr records)
              fs;
            frames := !frames @ fs)
    t.logs;
  if !gone then begin
    evict t s;
    `Restart
  end
  else begin
    Obs.Registry.add ship_records_c !records;
    Obs.Registry.add ship_bytes_c !bytes;
    (* [done_] in the tail phase = caught up: nothing was pending. *)
    `Records (P.Repl_tail, !frames, !records = 0)
  end

let pull t ~session ~max_bytes =
  Faultsim.Failpoint.hit fp_ship_batch;
  let max_bytes = max 4096 max_bytes in
  with_lock t (fun () ->
      match Hashtbl.find_opt t.sessions session with
      | None -> `Restart
      | Some s ->
          if s.bootstrapping then pull_snapshot t s ~max_bytes
          else pull_tail t s ~max_bytes)

(* Trim tail rings below the slowest subscriber.  Bootstrap sessions
   hold their captured cursors, so their unconsumed tail is retained. *)
let trim_locked t =
  Array.iteri
    (fun i log ->
      let min_cursor = ref (Logger.tail_next_seq log) in
      Hashtbl.iter
        (fun _ s -> if s.cursors.(i) < !min_cursor then min_cursor := s.cursors.(i))
        t.sessions;
      Logger.trim_tail log ~below:!min_cursor)
    t.logs

let ack t ~session ~applied =
  Faultsim.Failpoint.hit fp_ship_ack;
  with_lock t (fun () ->
      match Hashtbl.find_opt t.sessions session with
      | None -> false
      | Some s ->
          Array.blit applied 0 s.acked 0
            (min (Array.length applied) (Array.length s.acked));
          trim_locked t;
          true)

let session_lag t s =
  let lag = ref 0 in
  Array.iteri
    (fun i log -> lag := !lag + max 0 (Logger.tail_next_seq log - s.cursors.(i)))
    t.logs;
  !lag

let status t =
  with_lock t (fun () ->
      let peers =
        Hashtbl.fold
          (fun _ s acc ->
            {
              P.peer_session = s.sid;
              peer_lag = session_lag t s;
              peer_applied = Array.copy s.acked;
            }
            :: acc)
          t.sessions []
        |> List.sort (fun a b -> Int64.compare a.P.peer_session b.P.peer_session)
      in
      {
        P.repl_role = "primary";
        repl_applied = Array.map Store.max_version t.stores;
        repl_horizon = Array.map Logger.tail_next_seq t.logs;
        repl_retained = Array.fold_left (fun a l -> a + Logger.tail_bytes l) 0 t.logs;
        repl_peers = peers;
      })

let sessions t = with_lock t (fun () -> Hashtbl.length t.sessions)

let drop_session t session =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.sessions session with
      | Some s ->
          evict t s;
          trim_locked t
      | None -> ())

let close t =
  with_lock t (fun () ->
      Hashtbl.iter (fun _ s -> close_session_snaps s) t.sessions;
      Hashtbl.reset t.sessions)

let register_obs t =
  Obs.Registry.gauge reg "repl.sessions" (fun () -> sessions t);
  Obs.Registry.gauge reg "repl.retained_bytes" (fun () ->
      Array.fold_left (fun a l -> a + Logger.tail_bytes l) 0 t.logs);
  Obs.Registry.gauge reg "repl.ship_lag_records" (fun () ->
      with_lock t (fun () ->
          Hashtbl.fold (fun _ s m -> max m (session_lag t s)) t.sessions 0))

let handler t ~worker:_ req =
  match req with
  | P.Repl_open ->
      let sid, versions = open_session t in
      P.Repl_opened { session = sid; versions }
  | P.Repl_batch { session; max_bytes } -> (
      match pull t ~session ~max_bytes with
      | `Restart -> P.Repl_records { phase = P.Repl_restart; frames = []; done_ = false }
      | `Records (phase, frames, done_) -> P.Repl_records { phase; frames; done_ })
  | P.Repl_ack { session; applied } ->
      if ack t ~session ~applied then P.Repl_acked
      else P.Repl_records { phase = P.Repl_restart; frames = []; done_ = false }
  | P.Repl_status -> P.Repl_status_reply (status t)
  | P.Repl_promote -> P.Failed "already primary"
  | P.Repl_read { key; columns; floor = _ } ->
      (* The primary is trivially fresh: any floor a client holds came
         from this clock. *)
      let s = t.stores.(t.route key) in
      P.Value
        (match columns with
        | [] -> Store.get s key
        | cols -> Store.get_columns s key cols)
  | _ -> P.Failed "not a replication request"
