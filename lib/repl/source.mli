(** Primary side of log-shipping replication (docs/REPLICATION.md).

    Serves pull-driven replica subscriptions over the [Repl_*] wire
    tags: bootstrap streams a pinned MVCC snapshot as synthesized
    version-carrying {!Persist.Logrec.Put} frames; steady state drains
    the loggers' bounded tail rings, shipping record frames verbatim
    with their CRC framing intact (the replica re-verifies each frame
    before applying).

    Subscription ordering is capture-cursors-first, pin-snapshot-second:
    a write racing the subscription can be delivered twice (snapshot and
    tail) but never zero times; the replica's per-key version guard
    makes the duplicate a no-op.

    Sessions are not resumable.  A session whose cursor falls off a tail
    ring (slow or dead replica — retention is capped, so it cannot pin
    memory) is evicted, and its next pull answers [Repl_restart]: the
    replica must rebuild from a fresh subscription. *)

type t

val create :
  ?tail_cap_bytes:int ->
  ?snap_chunk:int ->
  route:(string -> int) ->
  logs:Persist.Logger.t array ->
  Kvstore.Store.t array ->
  t
(** [create ~route ~logs stores] makes the stores' update logs
    shippable ({!Persist.Logger.enable_tail}, ring capped at
    [tail_cap_bytes], default 16 MiB per log).  [route] maps a key to
    its owning store index ([Shard.Router.shard_of], or [fun _ -> 0]
    for a single store); it serves [Repl_read] on the primary.
    [snap_chunk] (default 512) bounds entries scanned per bootstrap
    round. *)

val open_session : t -> int64 * int64 array
(** Subscribe: session id + the pinned bootstrap cut per store. *)

val pull :
  t -> session:int64 -> max_bytes:int ->
  [ `Records of Kvserver.Protocol.repl_phase * string list * bool | `Restart ]
(** Next batch of encoded record frames (bounded by [max_bytes], always
    at least one frame if pending).  The [bool] is [done_]: bootstrap
    complete in the snapshot phase, caught-up (nothing pending) in the
    tail phase.  [`Restart]: unknown or evicted session. *)

val ack : t -> session:int64 -> applied:int64 array -> bool
(** Record the replica's per-store applied clock and trim tail
    retention below the slowest subscriber.  False if unknown. *)

val status : t -> Kvserver.Protocol.repl_status

val sessions : t -> int

val drop_session : t -> int64 -> unit
(** Evict a session (closing any bootstrap pins) and trim retention. *)

val close : t -> unit
(** Evict every session.  The tail rings stay enabled. *)

val register_obs : t -> unit
(** Publish [repl.sessions], [repl.retained_bytes] and
    [repl.ship_lag_records] gauges on {!Obs.Registry.global} (counters
    [repl.ship_records/ship_bytes/snapshot_records/snapshot_bytes/
    session_restarts] are always recorded). *)

val handler :
  t -> worker:int -> Kvserver.Protocol.request -> Kvserver.Protocol.response
(** Wire adapter for {!Kvserver.Engine.set_repl_handler}: answers every
    [Repl_*] tag ([Repl_promote] fails — this node is the primary;
    [Repl_read] is served directly, the primary is trivially fresh). *)
