(* Crash-torture for the replication subsystem (docs/REPLICATION.md).

   One scripted scenario, swept over every repl.* failpoint x hit count
   x loss-model variant, modeling TWO processes on TWO simulated disks:
   a primary (store + logs + Source) and a replica (store + own logs +
   Replica) syncing in-process.  Which "process" dies follows from the
   armed point: repl.ship.* fire inside the primary's pull/ack path —
   primary death, fail over by promoting the live replica; repl.apply.*
   and repl.promote.* fire in the replica — replica death, recover it
   from its own logs.

   Oracles:
   - No phantoms, ever: every binding on a promoted or recovered
     replica is a (key, value) the primary actually wrote.  With the
     bit-flip variant this is the CRC check's teeth — a scrambled
     record must be detected, not replayed as garbage.
   - Replica durability barrier: everything the replica had applied at
     its last [Logger.mark] survives its crash (unless removed since).
   - Promotion safety: promote marks before it completes, so a crash
     {e after} repl.promote.sealed must recover everything applied at
     promote time; the promoted store accepts writes; a crash of the
     freshly promoted node loses nothing it had at promotion.
   - Fail-over equivalence: after a primary death the promoted replica
     holds exactly what it had applied (plus at most the one batch in
     flight); after a replica death, a rebuilt replica re-bootstraps
     from the live primary and converges to equality. *)

module Failpoint = Faultsim.Failpoint
module Sim = Faultsim.Sim
module Store = Kvstore.Store
module Logger = Persist.Logger
module SMap = Map.Make (String)
module SSet = Set.Make (String)

type outcome = Crashed_ok | Clean | Violation of string list
type case = { point : string; at : int; variant : int; outcome : outcome }

type summary = {
  cases : case list;
  crash_points : (string * int) list;
  violations : case list;
}

type st = {
  pdisk : Sim.t;
  pvfs : Faultsim.Vfs.t;
  rdisk : Sim.t;
  rvfs : Faultsim.Vfs.t;
  crashed : string option ref;
  mutable pstore : Store.t;
  mutable plogs : Logger.t array;
  mutable source : Source.t option;
  mutable rstore : Store.t;
  mutable rlogs : Logger.t array;
  mutable replica : Replica.t option;
  mutable seq : int;
  mutable pmodel : string SMap.t;
  written : (string * string, unit) Hashtbl.t;
  mutable ever_removed : SSet.t;
  mutable r_applied : string SMap.t; (* replica content at last completed step *)
  mutable r_guaranteed : string SMap.t; (* r_applied at last replica mark barrier *)
}

let dir = "disk"

let bail st =
  match !(st.crashed) with Some p -> raise (Failpoint.Crash p) | None -> ()

let key i = Printf.sprintf "key%03d" i
let source st = Option.get st.source
let replica st = Option.get st.replica

let make_logs vfs tag =
  Array.init 2 (fun i ->
      Logger.create ~vfs ~manual:true
        (Filename.concat dir (Printf.sprintf "log-%s-%d" tag i)))

let put st i =
  st.seq <- st.seq + 1;
  let v = Printf.sprintf "v%05d" st.seq in
  let k = key i in
  Store.put ~worker:(st.seq mod 2) st.pstore k [| v |];
  st.pmodel <- SMap.add k v st.pmodel;
  Hashtbl.replace st.written (k, v) ();
  bail st

let remove st i =
  let k = key i in
  if Store.remove ~worker:0 st.pstore k then begin
    st.pmodel <- SMap.remove k st.pmodel;
    st.ever_removed <- SSet.add k st.ever_removed
  end;
  bail st

let dump store =
  let m = ref SMap.empty in
  ignore
    (Store.getrange store ~start:"" ~limit:max_int (fun k cols ->
         if Array.length cols = 1 then m := SMap.add k cols.(0) !m));
  !m

let call_primary st req = Source.handler (source st) ~worker:0 req

let start_replica st tag =
  let rlogs = make_logs st.rvfs tag in
  let rstore = Store.create ~logs:rlogs () in
  st.rlogs <- rlogs;
  st.rstore <- rstore;
  st.replica <-
    Some
      (Replica.create ~batch_bytes:2048 ~route:(fun _ -> 0) ~logs:rlogs
         [| rstore |]);
  st.r_applied <- SMap.empty;
  st.r_guaranteed <- SMap.empty;
  bail st

let step st =
  (match Replica.step (replica st) ~call:(call_primary st) with
  | `Continue | `Caught_up -> st.r_applied <- dump st.rstore
  | `Restart_needed ->
      (* Unexpected in-script (the ring cap is far above the workload);
         a clean rebuild keeps the sweep honest if it ever fires. *)
      start_replica st "rX"
  | `Error m -> failwith ("replica step failed: " ^ m)
  | `Promoted -> ());
  bail st

let drain st =
  let rec go n =
    if n > 10_000 then failwith "replica never caught up";
    match Replica.step (replica st) ~call:(call_primary st) with
    | `Caught_up -> st.r_applied <- dump st.rstore
    | `Continue ->
        st.r_applied <- dump st.rstore;
        go (n + 1)
    | `Restart_needed -> failwith "session restarted while draining"
    | `Error m -> failwith ("replica step failed: " ^ m)
    | `Promoted -> ()
  in
  go 0;
  bail st

let replica_barrier st =
  Array.iter Logger.mark st.rlogs;
  st.r_guaranteed <- st.r_applied;
  bail st

let script st =
  st.pvfs.mkdir dir;
  st.rvfs.mkdir dir;
  (* --- primary up, seeded --- *)
  st.plogs <- make_logs st.pvfs "p";
  st.pstore <- Store.create ~logs:st.plogs ();
  st.source <-
    Some (Source.create ~route:(fun _ -> 0) ~logs:st.plogs [| st.pstore |]);
  for i = 1 to 12 do
    put st i
  done;
  Array.iter Logger.mark st.plogs;
  (* --- replica subscribes; bootstrap races live writes --- *)
  start_replica st "r";
  step st;
  for i = 13 to 16 do
    put st i
  done;
  remove st 1;
  step st;
  step st;
  drain st;
  replica_barrier st;
  (* --- steady-state shipping with removes and overwrites --- *)
  for i = 17 to 22 do
    put st i
  done;
  remove st 2;
  remove st 3;
  put st 13;
  drain st;
  replica_barrier st;
  for i = 23 to 26 do
    put st i
  done;
  drain st;
  (* --- fail over: promote (marks, seals the replica's role) --- *)
  ignore (Replica.promote (replica st));
  bail st

(* ---- verification ---- *)

let trunc v = if String.length v <= 12 then v else String.sub v 0 12 ^ "..."

let check_no_phantoms st label store errs =
  ignore
    (Store.getrange store ~start:"" ~limit:max_int (fun k cols ->
         if Array.length cols <> 1 || not (Hashtbl.mem st.written (k, cols.(0)))
         then
           errs := Printf.sprintf "%s: phantom binding for key %s" label k :: !errs))

(* Every (k, v) in [expect] must still be accounted for in [store]: the
   same value, a newer genuinely-written value, or absent only if the
   key was ever removed. *)
let check_covers st label store expect errs =
  SMap.iter
    (fun k v ->
      match Store.get store k with
      | Some [| v' |] ->
          if v' <> v && not (Hashtbl.mem st.written (k, v')) then
            errs :=
              Printf.sprintf "%s: key %s has unwritten value %S" label k (trunc v')
              :: !errs
      | Some _ -> errs := Printf.sprintf "%s: key %s wrong arity" label k :: !errs
      | None ->
          if not (SSet.mem k st.ever_removed) then
            errs :=
              Printf.sprintf "%s: key %s (= %S) lost, never removed" label k
                (trunc v)
              :: !errs)
    expect

let recover_replica st =
  let logs =
    st.rvfs.readdir dir |> Array.to_list
    |> List.filter (fun f -> String.length f >= 4 && String.sub f 0 4 = "log-")
    |> List.sort compare
    |> List.map (Filename.concat dir)
  in
  Store.recover ~vfs:st.rvfs ~replay_domains:1 ~log_paths:logs
    ~checkpoint_dirs:[] ()

let equal_dump a b = SMap.equal String.equal a b

let pp_diff label a b errs =
  SMap.iter
    (fun k v ->
      match SMap.find_opt k b with
      | Some v' when v' = v -> ()
      | Some v' ->
          errs :=
            Printf.sprintf "%s: key %s is %S, expected %S" label k (trunc v')
              (trunc v)
            :: !errs
      | None -> errs := Printf.sprintf "%s: key %s missing" label k :: !errs)
    a

(* Primary died mid-ship: promote the live replica and check the
   fail-over contract end to end, including durability of the promoted
   state across an immediate second crash. *)
let verify_primary_death st =
  let errs = ref [] in
  Failpoint.disarm_all ();
  Sim.crash st.pdisk;
  (match st.replica with
  | None -> errs := [ "primary died before the replica existed" ]
  | Some r ->
      ignore (Replica.promote r);
      let promoted = dump st.rstore in
      check_no_phantoms st "promoted" st.rstore errs;
      check_covers st "promoted" st.rstore st.r_applied errs;
      (* Promotion durability: everything the promoted node held was
         marked durable by promote — an immediate crash keeps it all. *)
      Sim.crash st.rdisk;
      (match recover_replica st with
      | Error e -> errs := ("recovery of promoted replica failed: " ^ e) :: !errs
      | Ok (s2, _) ->
          let rec2 = dump s2 in
          if not (equal_dump promoted rec2) then begin
            pp_diff "promoted-recovery" promoted rec2 errs;
            pp_diff "promoted-recovery(extra)" rec2 promoted errs
          end);
      (* The promoted in-memory store must accept writes. *)
      Store.put ~worker:0 st.rstore "post-promote" [| "pp" |];
      (match Store.get st.rstore "post-promote" with
      | Some [| "pp" |] -> ()
      | _ -> errs := "promoted store refused a write" :: !errs));
  List.rev !errs

(* Replica died mid-apply or mid-promote: recover it from its own logs,
   check the durability barrier, then (apply windows) rebuild and
   re-converge against the still-live primary. *)
let verify_replica_death st ~point =
  let errs = ref [] in
  Failpoint.disarm_all ();
  Sim.crash st.rdisk;
  (match recover_replica st with
  | Error e -> errs := ("replica recovery failed: " ^ e) :: !errs
  | Ok (s2, _) ->
      check_no_phantoms st "recovered-replica" s2 errs;
      check_covers st "recovered-replica" s2 st.r_guaranteed errs;
      (* A crash past repl.promote.sealed is after promote's mark
         barrier: everything applied at promote time must be durable. *)
      if point = "repl.promote.sealed" || point = "repl.promote.done" then
        check_covers st "post-seal" s2 st.r_applied errs);
  (* Fail-over continuation for apply-window deaths: the primary is
     still up; a rebuilt replica must converge to exact equality. *)
  if String.length point >= 10 && String.sub point 0 10 = "repl.apply" then begin
    st.crashed := None;
    try
      start_replica st "r2";
      drain st;
      let rd = dump st.rstore in
      if not (equal_dump st.pmodel rd) then begin
        pp_diff "rebuilt-replica" st.pmodel rd errs;
        pp_diff "rebuilt-replica(extra)" rd st.pmodel errs
      end
    with e ->
      errs :=
        ("rebuilt replica failed to converge: " ^ Printexc.to_string e) :: !errs
  end;
  List.rev !errs

let verify_clean st =
  let errs = ref [] in
  let rd = dump st.rstore in
  if not (equal_dump st.pmodel rd) then begin
    pp_diff "promoted-clean" st.pmodel rd errs;
    pp_diff "promoted-clean(extra)" rd st.pmodel errs
  end;
  if not (Replica.is_promoted (replica st)) then
    errs := "script completed without promotion" :: !errs;
  Store.put ~worker:0 st.rstore "post-promote" [| "pp" |];
  (match Store.get st.rstore "post-promote" with
  | Some [| "pp" |] -> ()
  | _ -> errs := "promoted store refused a write" :: !errs);
  List.rev !errs

let points () =
  List.filter
    (fun p -> String.length p >= 5 && String.sub p 0 5 = "repl.")
    (Failpoint.names ())

let is_replica_side p =
  (String.length p >= 10 && String.sub p 0 10 = "repl.apply")
  || (String.length p >= 12 && String.sub p 0 12 = "repl.promote")

let run_case ?(seed = 42L) ~point ~at ~variant () =
  Failpoint.reset ();
  let mix k =
    Int64.add seed (Int64.of_int ((((Hashtbl.hash point * 31) + at) * 131) + k))
  in
  let pdisk = Sim.create ~seed:(mix variant) in
  let rdisk = Sim.create ~seed:(mix (variant + 7919)) in
  (* Variant 3: the bit-flip corruption model on the replica's disk —
     the CRC-on-recovery satellite's teeth. *)
  if variant >= 3 then Sim.set_bit_flips rdisk true;
  let crashed = ref None in
  Failpoint.set_crash_hook (fun p ->
      if !crashed = None then begin
        crashed := Some p;
        (* Freeze the disk of the process that died; the other side
           keeps running (it is a different machine). *)
        if is_replica_side p then Sim.freeze rdisk else Sim.freeze pdisk
      end);
  Failpoint.arm point ~at Failpoint.Crash_process;
  let st =
    {
      pdisk;
      pvfs = Sim.vfs pdisk;
      rdisk;
      rvfs = Sim.vfs rdisk;
      crashed;
      pstore = Store.create ();
      plogs = [||];
      source = None;
      rstore = Store.create ();
      rlogs = [||];
      replica = None;
      seq = 0;
      pmodel = SMap.empty;
      written = Hashtbl.create 64;
      ever_removed = SSet.empty;
      r_applied = SMap.empty;
      r_guaranteed = SMap.empty;
    }
  in
  let completed =
    try
      script st;
      true
    with Failpoint.Crash _ -> false
  in
  Failpoint.disarm_all ();
  Failpoint.clear_crash_hook ();
  let outcome =
    if completed && !crashed = None then
      match verify_clean st with [] -> Clean | errs -> Violation errs
    else
      let point_hit = match !crashed with Some p -> p | None -> point in
      let errs =
        if is_replica_side point_hit then verify_replica_death st ~point:point_hit
        else verify_primary_death st
      in
      match errs with [] -> Crashed_ok | errs -> Violation errs
  in
  { point; at; variant; outcome }

let run_sweep ?(seed = 42L) ?(hits = [ 1; 2; 5 ]) ?(variants = [ 0; 1; 2; 3 ]) ()
    =
  let module SM = Map.Make (String) in
  let cases =
    List.concat_map
      (fun point ->
        List.concat_map
          (fun at ->
            List.map (fun variant -> run_case ~seed ~point ~at ~variant ()) variants)
          hits)
      (points ())
  in
  let crash_points =
    List.fold_left
      (fun acc c ->
        match c.outcome with
        | Crashed_ok ->
            SM.update c.point (function None -> Some 1 | Some n -> Some (n + 1)) acc
        | Clean | Violation _ -> acc)
      SM.empty cases
    |> SM.bindings
  in
  let violations =
    List.filter (fun c -> match c.outcome with Violation _ -> true | _ -> false) cases
  in
  { cases; crash_points; violations }
