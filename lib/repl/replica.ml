(* Replica side of log-shipping replication (docs/REPLICATION.md).

   The replica pulls batches of encoded {!Persist.Logrec} frames from
   its primary and applies them through the version-carrying migrate
   path: {!Kvstore.Store.migrate_put} installs the record under the
   primary's version (per-key newest-wins, so snapshot/tail overlap and
   cross-log interleavings are order-independent — the same replay
   guard recovery relies on) AND appends it to the replica's own log
   under that version, so the replica can recover locally and, once
   promoted, its logs agree with every future replay.

   Every frame's CRC is re-verified before applying ([Logrec.decode]);
   a corrupt frame poisons the session and forces a rebuild — garbage
   is never applied.  The applied version clock is the bounded-staleness
   contract: a [Repl_read] with floor [f] is answered iff the owning
   store's clock has reached [f]. *)

module Store = Kvstore.Store
module Logger = Persist.Logger
module Logrec = Persist.Logrec
module P = Kvserver.Protocol

let reg = Obs.Registry.global
let applied_c = Obs.Registry.counter reg "repl.applied_records"
let corrupt_c = Obs.Registry.counter reg "repl.corrupt_frames"
let stale_c = Obs.Registry.counter reg "repl.stale_reads"

(* Slack between a bounded-staleness read's floor and the applied clock
   it found — how much fresher the replica was than the client needed. *)
let staleness_h = Obs.Registry.histogram reg "repl.read_staleness"

(* Crash windows: the replica dying mid-apply / mid-promote. *)
let fp_apply_batch = Faultsim.Failpoint.define "repl.apply.batch"
let fp_apply_record = Faultsim.Failpoint.define "repl.apply.record"
let fp_promote_begin = Faultsim.Failpoint.define "repl.promote.begin"
let fp_promote_sealed = Faultsim.Failpoint.define "repl.promote.sealed"
let fp_promote_done = Faultsim.Failpoint.define "repl.promote.done"

type t = {
  mutable stores : Store.t array;
  mutable logs : Logger.t array;
  route : string -> int;
  batch_bytes : int;
  lock : Mutex.t;
  mutable session : int64 option;
  mutable bootstrap_done : bool;
  mutable promoted : bool;
  mutable corrupt : int;
  mutable applied_records : int;
}

let create ?(batch_bytes = 1 lsl 20) ~route ~logs stores =
  {
    stores;
    logs;
    route;
    batch_bytes = max 4096 batch_bytes;
    lock = Mutex.create ();
    session = None;
    bootstrap_done = false;
    promoted = false;
    corrupt = 0;
    applied_records = 0;
  }

let applied t = Array.map Store.max_version t.stores

let applied_max t =
  Array.fold_left (fun a s -> max a (Store.max_version s)) 0L t.stores

let bootstrap_done t = t.bootstrap_done

let is_promoted t = t.promoted

let corrupt_frames t = t.corrupt

let applied_count t = t.applied_records

(* Swap in rebuilt (empty) stores after a [Repl_restart]: the primary
   evicted our session, so local state may miss removes that fell off
   the tail ring — it cannot be patched, only rebuilt. *)
let reset t ~stores ~logs =
  Mutex.lock t.lock;
  t.stores <- stores;
  t.logs <- logs;
  t.session <- None;
  t.bootstrap_done <- false;
  Mutex.unlock t.lock

exception Corrupt_frame

let apply_record t r =
  match r with
  | Logrec.Put { key; version; columns; _ } ->
      Store.migrate_put t.stores.(t.route key) ~key ~version ~columns
  | Logrec.Remove { key; version; _ } ->
      Store.migrate_remove t.stores.(t.route key) ~key ~version
  | Logrec.Marker _ | Logrec.Seal _ -> ()

let apply_frames t frames =
  let n = ref 0 in
  List.iter
    (fun frame ->
      Faultsim.Failpoint.hit fp_apply_record;
      match Logrec.decode frame ~pos:0 with
      | Logrec.Record (r, consumed) when consumed = String.length frame ->
          apply_record t r;
          incr n
      | Logrec.Record _ | Logrec.Need_more | Logrec.Corrupt ->
          t.corrupt <- t.corrupt + 1;
          Obs.Registry.incr corrupt_c;
          raise Corrupt_frame)
    frames;
  t.applied_records <- t.applied_records + !n;
  Obs.Registry.add applied_c !n;
  !n

(* One pull-apply-ack round against the primary.  [call] is the
   transport: a wire client's request/response, or the Source handler
   directly for in-process replicas. *)
let step t ~call =
  if t.promoted then `Promoted
  else
    match t.session with
    | None -> (
        match call P.Repl_open with
        | P.Repl_opened { session; versions = _ } ->
            Mutex.lock t.lock;
            t.session <- Some session;
            t.bootstrap_done <- false;
            Mutex.unlock t.lock;
            `Continue
        | P.Failed m -> `Error m
        | _ -> `Error "unexpected reply to Repl_open")
    | Some sid -> (
        match call (P.Repl_batch { session = sid; max_bytes = t.batch_bytes }) with
        | P.Repl_records { phase = P.Repl_restart; _ } ->
            t.session <- None;
            `Restart_needed
        | P.Repl_records { phase; frames; done_ } -> (
            Faultsim.Failpoint.hit fp_apply_batch;
            match apply_frames t frames with
            | exception Corrupt_frame ->
                (* Never apply past a bad frame; the local store may now
                   miss records, so rebuild from scratch. *)
                t.session <- None;
                `Restart_needed
            | n -> (
                if phase = P.Repl_snapshot && done_ then t.bootstrap_done <- true;
                match call (P.Repl_ack { session = sid; applied = applied t }) with
                | P.Repl_acked ->
                    if phase = P.Repl_tail && n = 0 then `Caught_up else `Continue
                | P.Repl_records { phase = P.Repl_restart; _ } ->
                    t.session <- None;
                    `Restart_needed
                | P.Failed m -> `Error m
                | _ -> `Error "unexpected reply to Repl_ack"))
        | P.Failed m -> `Error m
        | _ -> `Error "unexpected reply to Repl_batch")

(* Drive to lag 0: bootstrap then tail until one round ships nothing.
   Gives up after [max_rounds] (a concurrently-written primary may stay
   ahead forever). *)
let catch_up ?(max_rounds = 1_000_000) t ~call =
  let rec go rounds =
    if rounds >= max_rounds then `Gave_up
    else
      match step t ~call with
      | `Continue -> go (rounds + 1)
      | (`Caught_up | `Restart_needed | `Error _ | `Promoted) as r -> r
  in
  go 0

(* Flip to primary.  Ordering is the safety argument: (1) every applied
   record is already in our own logs under its primary version (the
   migrate path), (2) [mark] makes them durable — a crash after the
   barrier recovers everything applied, (3) only then do we stop being
   a replica and accept writes.  The clock needs no separate adoption:
   [apply_put/apply_remove] bump it past every applied version, so
   post-promotion writes mint strictly newer versions and can never
   lose a replay race against shipped records. *)
let promote t =
  Faultsim.Failpoint.hit fp_promote_begin;
  Mutex.lock t.lock;
  t.session <- None;
  Mutex.unlock t.lock;
  Array.iter Logger.mark t.logs;
  Faultsim.Failpoint.hit fp_promote_sealed;
  (* Chain-free tombstones are dead weight once replay stops; removes
     are still in our logs, so restarts stay order-independent. *)
  Array.iter Store.sweep_tombstones t.stores;
  t.promoted <- true;
  Faultsim.Failpoint.hit fp_promote_done;
  applied t

let status t =
  {
    P.repl_role = (if t.promoted then "primary" else "replica");
    repl_applied = applied t;
    repl_horizon = Array.map Logger.tail_next_seq t.logs;
    repl_retained = 0;
    repl_peers = [];
  }

let read t ~key ~columns ~floor =
  let s = t.stores.(t.route key) in
  let app = Store.max_version s in
  if Int64.compare app floor >= 0 then begin
    Obs.Registry.observe staleness_h
      (Int64.to_int (Int64.sub app floor) land max_int);
    P.Value
      (match columns with
      | [] -> Store.get s key
      | cols -> Store.get_columns s key cols)
  end
  else begin
    Obs.Registry.incr stale_c;
    P.Repl_stale { applied = app }
  end

let register_obs t =
  Obs.Registry.gauge reg "repl.applied_version" (fun () ->
      Int64.to_int (applied_max t) land max_int);
  Obs.Registry.gauge reg "repl.bootstrap_done" (fun () ->
      if t.bootstrap_done then 1 else 0)

let handler ?(on_promote = fun () -> ()) t ~worker:_ req =
  match req with
  | P.Repl_status -> P.Repl_status_reply (status t)
  | P.Repl_read { key; columns; floor } -> read t ~key ~columns ~floor
  | P.Repl_promote ->
      if t.promoted then P.Failed "already promoted"
      else begin
        let versions = promote t in
        on_promote ();
        P.Repl_promoted { versions }
      end
  | P.Repl_open | P.Repl_batch _ | P.Repl_ack _ ->
      P.Failed "replica: cannot serve subscriptions (chained replication unsupported)"
  | _ -> P.Failed "not a replication request"
