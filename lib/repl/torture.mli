(** Crash-torture for the replication subsystem.

    One scripted scenario — a primary and a replica on two independent
    {!Faultsim.Sim} disks, bootstrap racing live writes, steady-state
    shipping with removes and overwrites, and a final promotion — swept
    over every [repl.*] failpoint.  The armed point decides which
    "process" dies: [repl.ship.*] kill the primary (fail over by
    promoting the live replica), [repl.apply.*] / [repl.promote.*] kill
    the replica (recover it from its own logs, then rebuild against the
    still-live primary).

    Checked invariants: no phantom bindings ever (every value is one the
    primary actually wrote — with the bit-flip variant this exercises
    the CRC framing); everything applied at the replica's last
    {!Persist.Logger.mark} survives its crash; a crash after
    [repl.promote.sealed] recovers everything applied at promote time;
    a promoted replica accepts writes and loses nothing across an
    immediate second crash; a rebuilt replica re-converges to exact
    equality with the live primary. *)

type outcome =
  | Crashed_ok  (** crashed at the armed point; every invariant held. *)
  | Clean  (** the armed hit was never reached and the full run verified. *)
  | Violation of string list  (** replication contract broken — the bug list. *)

type case = { point : string; at : int; variant : int; outcome : outcome }

type summary = {
  cases : case list;
  crash_points : (string * int) list;
      (** point name -> number of cases that actually crashed there. *)
  violations : case list;
}

val run_case : ?seed:int64 -> point:string -> at:int -> variant:int -> unit -> case
(** Run the scenario once, armed to crash at the [at]-th hit of [point].
    [variant] perturbs both simulated disks' seeds; variant 3 also
    enables the bit-flip corruption model on the replica's disk. *)

val run_sweep :
  ?seed:int64 -> ?hits:int list -> ?variants:int list -> unit -> summary
(** Every [repl.*] failpoint x [hits] (default [[1; 2; 5]]) x [variants]
    (default [[0; 1; 2; 3]]). *)
