(** Replica side of log-shipping replication (docs/REPLICATION.md).

    Pulls encoded {!Persist.Logrec} frames from a primary and applies
    them through the version-carrying {!Kvstore.Store.migrate_put} path:
    per-key newest-version-wins makes apply order-independent (snapshot/
    tail overlap, cross-log interleavings), and every applied record
    lands in the replica's {e own} log under its primary version, so the
    replica recovers locally and a promoted replica's logs agree with
    all future replays.  Frame CRCs are re-verified before applying;
    corruption poisons the session rather than applying garbage.

    The per-store applied version clock ({!applied}) is the
    bounded-staleness serving contract: {!read} with floor [f] answers
    iff the owning store's clock reached [f], else [Repl_stale]. *)

type t

val create :
  ?batch_bytes:int ->
  route:(string -> int) ->
  logs:Persist.Logger.t array ->
  Kvstore.Store.t array ->
  t
(** [create ~route ~logs stores] wraps the replica's (normally empty)
    stores and their update logs.  [route] must match the primary's
    partitioning ([Shard.Router.shard_of] with the same shard count, or
    [fun _ -> 0]).  [batch_bytes] (default 1 MiB) sizes each pull. *)

val step :
  t ->
  call:(Kvserver.Protocol.request -> Kvserver.Protocol.response) ->
  [ `Continue | `Caught_up | `Restart_needed | `Error of string | `Promoted ]
(** One pull-apply-ack round.  [call] is the transport (a TCP client's
    request/response, or {!Source.handler} directly for in-process
    replicas).  [`Caught_up]: the tail had nothing pending — lag 0 at
    that instant.  [`Restart_needed]: the primary evicted the session
    (or a frame failed its CRC); local state may now be missing records
    and cannot be patched — rebuild empty stores and {!reset}. *)

val catch_up :
  ?max_rounds:int ->
  t ->
  call:(Kvserver.Protocol.request -> Kvserver.Protocol.response) ->
  [ `Caught_up | `Restart_needed | `Error of string | `Promoted | `Gave_up ]
(** {!step} until a round ships nothing. *)

val reset : t -> stores:Kvstore.Store.t array -> logs:Persist.Logger.t array -> unit
(** Install rebuilt (empty) stores after [`Restart_needed]. *)

val applied : t -> int64 array
(** Per-store applied version clock (= each store's [max_version]). *)

val applied_max : t -> int64

val bootstrap_done : t -> bool

val applied_count : t -> int
(** Records applied over this replica's lifetime. *)

val corrupt_frames : t -> int
(** Frames that failed CRC re-verification on apply. *)

val read :
  t -> key:string -> columns:int list -> floor:int64 -> Kvserver.Protocol.response
(** Bounded-staleness read: [Value] if the owning store's applied clock
    is [>= floor], else [Repl_stale { applied }]. *)

val promote : t -> int64 array
(** Flip to primary; returns the adopted per-store clock.  Safety
    ordering: applied records are already in the replica's own logs
    under their primary versions, [promote] makes them durable with a
    {!Persist.Logger.mark} barrier, sweeps chain-free tombstones, and
    only then stops replicating.  The clock needs no separate adoption —
    apply bumps it past every applied version, so post-promotion writes
    mint strictly newer versions (no lost replay races, no
    resurrection). *)

val is_promoted : t -> bool

val status : t -> Kvserver.Protocol.repl_status

val register_obs : t -> unit
(** Publish [repl.applied_version] / [repl.bootstrap_done] gauges
    (counters [repl.applied_records/corrupt_frames/stale_reads] and the
    [repl.read_staleness] histogram are always recorded). *)

val handler :
  ?on_promote:(unit -> unit) ->
  t ->
  worker:int ->
  Kvserver.Protocol.request ->
  Kvserver.Protocol.response
(** Wire adapter for {!Kvserver.Engine.set_repl_handler} on a replica
    node: serves [Repl_status] / [Repl_read] / [Repl_promote]
    ([on_promote] runs after a successful promotion — the daemon uses it
    to flip the engine out of read-only mode). *)
