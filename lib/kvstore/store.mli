(** The Masstree storage system (§3, §4.7, §5): a Masstree index over
    multi-column values, with per-worker update logs and checkpoints.

    Values are a version number plus an array of byte-string columns.
    Puts that touch a subset of columns copy the untouched ones from the
    old value into a fresh object and swap it in with one store, so
    multi-column puts are atomic: a concurrent get sees all or none of a
    put's modifications.  Sequential updates to one value get distinct,
    increasing version numbers (used by log replay ordering).

    Logging is optional: a store created with [logs] writes every update
    to one of the per-worker logs (workers pick their log by worker id,
    mimicking the paper's per-core log files). *)

type value = { version : int64; columns : string array }

type layout =
  | Contiguous
      (** §4.7's small-value design: all columns packed into one
          freshly-built block per update.  Reads touch one allocation;
          column updates copy every byte of the value. *)
  | Columnar
      (** §4.7's large-value design: one block per column.  Column
          updates copy only pointers to unmodified columns; reads of many
          columns chase one pointer per column. *)

type t

val create : ?logs:Persist.Logger.t array -> ?layout:layout -> unit -> t
(** [layout] defaults to [Contiguous], the variant the paper evaluates
    ("most appropriate for small values"). *)

val layout : t -> layout

val close : t -> unit
(** Sync and close the attached loggers. *)

(** {1 Operations (§3)} *)

val get : t -> string -> string array option
(** Full-value get: all columns. *)

val get_columns : t -> string -> int list -> string array option
(** [get_columns t k cols] returns the requested columns in request
    order.  Missing column indexes read as [""]. *)

val get_value : t -> string -> value option

val multi_get : t -> string array -> string array option array
(** Batched full-value gets over the software-pipelined group-get path
    ({!Masstree_core.Tree.multi_get_pipelined}, docs/BATCHING.md): the
    whole batch's tree descents interleave one node per round with
    cross-lookup prefetch (§4.8).  The network engine calls this for
    merged runs of full-value get frames, and the shard router for each
    shard's slice of a fanned-out batch. *)

val put : ?worker:int -> t -> string -> string array -> unit
(** Full-value put (replaces all columns). *)

val put_columns : ?worker:int -> t -> string -> (int * string) list -> unit
(** [put_columns t k updates] atomically modifies just the listed columns,
    extending the column array if an index is beyond its current width. *)

val remove : ?worker:int -> t -> string -> bool

val getrange :
  t -> start:string -> ?columns:int list -> limit:int ->
  (string -> string array -> unit) -> int
(** Scan (§3): up to [limit] pairs from [start] in key order, returning
    the requested columns (default: all).  Not atomic w.r.t. writers. *)

val getrange_rev :
  t -> ?start:string -> ?columns:int list -> limit:int ->
  (string -> string array -> unit) -> int
(** Descending scan from [start] (default: the maximum key) — the paper's
    getrange "in either direction" (§4.3). *)

val cardinal : t -> int

(** {1 Snapshots (MVCC; docs/MVCC.md)}

    A snapshot pins a point in the store's version clock: every read
    through it resolves to the newest write with version [<=] the pinned
    one, no matter what concurrent writers do — long scans see one
    consistent cut with zero writer blocking and no retry storms.
    Writers that overwrite or remove a value while snapshots are open
    chain the retired payload off the new head ({!Mvcc.Chain}); closing
    the last snapshot that could read an entry lets the prune pass (run
    at epoch {e tick}/{e quiesce}, or {!maintain}) drop it, so live
    chained versions stay O(open snapshots).

    Writes still in flight when the snapshot opens (version minted
    before, tree store after) may surface on a later read — each
    individual read is still a committed value [<=] the cut, but opening
    a snapshot does not wait for in-flight writers to land.  Open before
    the writes you must not see, not during. *)

module Snapshot : sig
  type snap

  val open_ : t -> snap
  (** Pin the current {!max_version}.  O(1); never blocks writers. *)

  val version : snap -> int64
  (** The pinned cut: reads resolve to the newest version [<= version]. *)

  val epoch : snap -> int
  (** EBR global epoch at open (drives [mvcc.prune_lag_epochs]). *)

  val read : snap -> string -> string array option
  (** The key's columns as of the cut; [None] if absent (never written,
      removed before the cut, or born after it). *)

  val read_columns : snap -> string -> int list -> string array option

  val getrange :
    snap -> start:string -> ?columns:int list -> limit:int ->
    (string -> string array -> unit) -> int
  (** Consistent ascending scan at the cut: every emitted pair is the
      key's state as of {!version}, tombstones and later-born keys
      skipped. *)

  val getrange_versioned :
    snap -> start:string -> limit:int ->
    (string -> int64 -> string array -> unit) -> int
  (** {!getrange} that also yields each entry's resolved write version —
      the replication bootstrap feed: the receiver applies through
      {!migrate_put} so a concurrent log tail can race the feed safely
      (the per-key replay guard keeps the newest version either way).
      Tombstones at the cut are skipped (the feed seeds an empty
      store). *)

  val close : snap -> unit
  (** Release the pin (idempotent) and schedule pruning of entries only
      this snapshot could read.  Reads after [close] raise
      [Invalid_argument]. *)
end

val snapshots_open : t -> int

val mvcc_versions_live : t -> int
(** Chained (non-head) versions currently alive — the
    [mvcc.versions_live] gauge. *)

val prune : t -> unit
(** Run one prune pass now.  Passes are normally self-scheduled — by
    snapshot close, and by the write path when a chain grows past its
    trigger length — and run at epoch tick/quiesce, so chains stay
    bounded while operations flow.  Scheduled passes only run when
    something ticks the epoch machinery: an embedder holding snapshots
    open across idle periods should call [prune] (or {!maintain})
    periodically, as the server daemon's timer thread does. *)

val maintain : t -> unit
(** Prune, then run the index's deferred epoch maintenance
    ({!Masstree_core.Tree.maintain}); quiescent callers. *)

val tree_stats : t -> Masstree_core.Stats.t

val pool_stats : t -> Masstree_core.Pool.stats
(** Occupancy of the index's off-heap node arena. *)

val pool_footprint : t -> int
(** Bytes of slab storage the arena owns. *)

val pool_consistency : t -> (unit, string) result
(** The arena leak oracle ({!Masstree_core.Tree.pool_consistency}):
    single-threaded callers, after {!maintain}.  Soak's exit oracle. *)

val register_obs : t -> unit
(** Publish this store's live telemetry on {!Obs.Registry.global}: one
    [masstree.<counter>] gauge per {!Masstree_core.Stats} counter
    (retries, splits, layer creations, …) and, when the store logs, a
    [log.buffered_bytes] gauge summing its loggers' unflushed bytes.
    Registration replaces by name, so the most recently registered store
    is the one reporting — call it again after recovery swaps stores. *)

(** {1 Persistence (§5)} *)

val checkpoint :
  ?vfs:Faultsim.Vfs.t -> ?snapshot:bool -> t -> dir:string -> writers:int ->
  (string, string) result
(** Dump the store and return the manifest path.  By default the dump
    walks a pinned {!Snapshot} — one consistent cut, no interference
    with foreground puts; [~snapshot:false] keeps the pre-MVCC
    racing-scan behavior (each key some committed version — the
    [bench ckpt] interference baseline).  Only resolved heads are
    written: chains never reach disk ({!Persist.Checkpoint.entry} has no
    chain field).  [vfs] (default: the real filesystem) is how the
    crash-torture harness redirects checkpoint I/O onto a simulated
    disk. *)

val recover :
  ?vfs:Faultsim.Vfs.t ->
  ?logs:Persist.Logger.t array ->
  ?layout:layout ->
  ?replay_domains:int ->
  ?keep_tombstones:bool ->
  log_paths:string list ->
  checkpoint_dirs:string list ->
  unit ->
  (t * Persist.Recovery.stats, string) result
(** Rebuild a store from checkpoint + logs (the version guard ensures
    replay order-independence across per-core logs).  [keep_tombstones]
    (default false) retains versioned remove tombstones instead of
    sweeping them after replay, so a caller merging several recovered
    stores (the daemon's reshard migration) can let a newer remove in one
    dir shadow an older put in another; sweep with {!sweep_tombstones}
    once the merge is done. *)

val check : t -> (unit, string) result
(** Deep structural check of the underlying index (quiescent callers
    only); see {!Masstree_core.Tree.check}. *)

val max_version : t -> int64
(** Largest version this store has issued or observed. *)

val ensure_version_above : t -> int64 -> unit
(** Make every future version exceed [version].  A store populated by
    migrating another store's bindings (the daemon's startup path) must
    inherit the source's clock, or records in the previous incarnation's
    still-present logs would out-version — and silently shadow — newer
    updates during a subsequent recovery. *)

(** {1 Migration (the daemon's startup reshard)} *)

val iter_entries :
  t -> (key:string -> version:int64 -> columns:string array option -> unit) -> unit
(** Iterate every binding in key order {e including} tombstones
    ([columns = None], present only after [recover ~keep_tombstones:true])
    with its version — the source side of a reshard migration. *)

val migrate_put : ?worker:int -> t -> key:string -> version:int64 -> columns:string array -> unit

val migrate_remove : ?worker:int -> t -> key:string -> version:int64 -> unit
(** Version-carrying logged writes: apply the binding only if [version]
    is newer than what the store holds (the replay guard), {e and} append
    it to the store's log under that same version.  Because the recovered
    version travels with the record, a key migrated from several source
    dirs converges on its newest copy regardless of migration order, on
    this run and on every subsequent replay.  [migrate_remove]
    materializes a versioned tombstone — sweep with {!sweep_tombstones}
    before serving. *)

val sweep_tombstones : t -> unit
(** Drop remove tombstones left by [recover ~keep_tombstones:true] or
    {!migrate_remove} (quiescent callers only). *)

(** {1 Internal (replay + tests)} *)

val apply_put : t -> key:string -> version:int64 -> columns:string array -> unit
val apply_remove : t -> key:string -> version:int64 -> unit
