open Masstree_core

type value = { version : int64; columns : string array }

type layout = Contiguous | Columnar

(* The two §4.7 value representations.  [Flat] packs all columns into one
   string with an offset table — one allocation per value, whole-value
   copy on every update.  [Cols] keeps one block per column — updates
   share unmodified blocks structurally.  Both are immutable and swapped
   in with a single store, so multi-column puts stay atomic. *)
type content =
  | Flat of string * int array (* data, column end-offsets *)
  | Cols of string array

let pack columns =
  let n = Array.length columns in
  let offsets = Array.make n 0 in
  let total = ref 0 in
  Array.iteri
    (fun i c ->
      total := !total + String.length c;
      offsets.(i) <- !total)
    columns;
  let buf = Bytes.create !total in
  let pos = ref 0 in
  Array.iter
    (fun c ->
      Bytes.blit_string c 0 buf !pos (String.length c);
      pos := !pos + String.length c)
    columns;
  Flat (Bytes.unsafe_to_string buf, offsets)

let unpack = function
  | Cols a -> a
  | Flat (data, offsets) ->
      Array.mapi
        (fun i e ->
          let s = if i = 0 then 0 else offsets.(i - 1) in
          String.sub data s (e - s))
        offsets

let content_of layout columns =
  match layout with Contiguous -> pack columns | Columnar -> Cols columns

(* Stored values carry an optional tombstone state: during recovery a
   Remove record must shadow older Put records that may arrive later from
   other logs, so removes materialize as versioned tombstones and are
   swept once replay finishes.  Live operation never stores tombstones. *)
type stored = { sversion : int64; scontent : content option }

type t = {
  tree : stored Tree.t;
  logs : Persist.Logger.t array;
  vlayout : layout;
  (* Global version clock: distinct, increasing versions across all keys.
     The paper needs per-value increasing versions; a global counter also
     orders remove/reinsert pairs across different per-core logs.  (On the
     paper's 16 cores this would be a contended line; they use per-value
     counters plus timestamps.  See DESIGN.md §5.) *)
  clock : int Atomic.t;
}

let create ?(logs = [||]) ?(layout = Contiguous) () =
  {
    tree = Tree.create ();
    logs = Array.map Fun.id logs;
    vlayout = layout;
    clock = Atomic.make 1;
  }

let layout t = t.vlayout

let close t =
  Array.iter Persist.Logger.seal t.logs;
  Array.iter Persist.Logger.close t.logs

let next_version t = Int64.of_int (Atomic.fetch_and_add t.clock 1)

let max_version t = Int64.of_int (Atomic.get t.clock - 1)

let logger_for t worker =
  if Array.length t.logs = 0 then None
  else Some t.logs.(worker mod Array.length t.logs)

let log_put t ~worker ~key ~version ~columns =
  match logger_for t worker with
  | None -> ()
  | Some l ->
      Persist.Logger.append l
        (Persist.Logrec.Put
           { key; version; timestamp = Xutil.Clock.wall_us (); columns })

let log_remove t ~worker ~key ~version =
  match logger_for t worker with
  | None -> ()
  | Some l ->
      Persist.Logger.append l
        (Persist.Logrec.Remove { key; version; timestamp = Xutil.Clock.wall_us () })

let default_worker () = (Domain.self () :> int)

(* ---- reads ---- *)

let get_value t key =
  match Tree.get t.tree key with
  | Some { sversion; scontent = Some c } -> Some { version = sversion; columns = unpack c }
  | Some { scontent = None; _ } | None -> None

let get t key = Option.map (fun v -> v.columns) (get_value t key)

let multi_get t keys =
  Array.map
    (function
      | Some { scontent = Some c; _ } -> Some (unpack c)
      | Some { scontent = None; _ } | None -> None)
    (Tree.multi_get t.tree keys)

let select columns requested =
  Array.of_list
    (List.map
       (fun i -> if i >= 0 && i < Array.length columns then columns.(i) else "")
       requested)

let get_columns t key cols =
  Option.map (fun v -> select v.columns cols) (get_value t key)

(* ---- writes ---- *)

let put ?worker t key columns =
  let worker = match worker with Some w -> w | None -> default_worker () in
  let version = next_version t in
  ignore
    (Tree.put_with t.tree key (fun _old ->
         { sversion = version; scontent = Some (content_of t.vlayout (Array.copy columns)) }));
  log_put t ~worker ~key ~version ~columns

let put_columns ?worker t key updates =
  let worker = match worker with Some w -> w | None -> default_worker () in
  let version = next_version t in
  let result = ref [||] in
  ignore
    (Tree.put_with t.tree key (fun old ->
         let base =
           match old with
           | Some { scontent = Some c; _ } -> unpack c
           | Some { scontent = None; _ } | None -> [||]
         in
         let width =
           List.fold_left (fun w (i, _) -> max w (i + 1)) (Array.length base) updates
         in
         (* Copy-on-write merge: the value object is fresh and the single
            pointer store in the tree publishes all modified columns at
            once (§4.7).  Under Columnar layout unmodified column blocks
            are shared; under Contiguous the whole value is re-packed. *)
         let merged = Array.make width "" in
         Array.blit base 0 merged 0 (Array.length base);
         List.iter (fun (i, c) -> if i >= 0 then merged.(i) <- c) updates;
         result := merged;
         { sversion = version; scontent = Some (content_of t.vlayout merged) }));
  log_put t ~worker ~key ~version ~columns:!result

let remove ?worker t key =
  let worker = match worker with Some w -> w | None -> default_worker () in
  match Tree.remove t.tree key with
  | Some { scontent = Some _; _ } ->
      log_remove t ~worker ~key ~version:(next_version t);
      true
  | Some { scontent = None; _ } | None -> false

(* ---- scans ---- *)

let getrange t ~start ?columns ~limit f =
  if limit <= 0 then 0
  else begin
    let emitted = ref 0 in
    let exception Done in
    (try
       ignore
         (Tree.scan t.tree ~start ~limit:max_int (fun k v ->
              match v.scontent with
              | None -> ()
              | Some content ->
                  let cols = unpack content in
                  let out = match columns with None -> cols | Some c -> select cols c in
                  f k out;
                  incr emitted;
                  if !emitted >= limit then raise Done))
     with Done -> ());
    !emitted
  end

let getrange_rev t ?start ?columns ~limit f =
  if limit <= 0 then 0
  else begin
    let emitted = ref 0 in
    let exception Done in
    (try
       ignore
         (Tree.scan_rev t.tree ?start ~limit:max_int (fun k v ->
              match v.scontent with
              | None -> ()
              | Some content ->
                  let cols = unpack content in
                  let out = match columns with None -> cols | Some c -> select cols c in
                  f k out;
                  incr emitted;
                  if !emitted >= limit then raise Done))
     with Done -> ());
    !emitted
  end

let cardinal t =
  let n = ref 0 in
  ignore
    (Tree.scan t.tree ~limit:max_int (fun _ v ->
         match v.scontent with Some _ -> incr n | None -> ()));
  !n

let tree_stats t = Tree.stats t.tree

(* Publish this store's live tree counters (and its loggers' buffer
   occupancy) as gauges on the global registry.  Gauge registration
   replaces by name, so the most recently registered store owns the
   [masstree.*] names — exactly what a server process wants after
   recovery swaps stores. *)
let register_obs t =
  let g = Obs.Registry.global in
  let st = Tree.stats t.tree in
  List.iter
    (fun c ->
      Obs.Registry.gauge g
        ("masstree." ^ Stats.name c)
        (fun () -> Stats.read st c))
    Stats.all;
  if Array.length t.logs > 0 then
    Obs.Registry.gauge g "log.buffered_bytes" (fun () ->
        Array.fold_left (fun a l -> a + Persist.Logger.buffered_bytes l) 0 t.logs)

let check t = Tree.check t.tree

(* ---- replay entry points (version-guarded, tombstone-aware) ---- *)

let bump_clock t version =
  let v = Int64.to_int version + 1 in
  let rec go () =
    let cur = Atomic.get t.clock in
    if v > cur && not (Atomic.compare_and_set t.clock cur v) then go ()
  in
  go ()

(* A store populated by copying another store's live bindings (the server
   daemon's startup migration) must continue the source's version clock:
   its fresh logs coexist on disk with the previous incarnation's until
   the first checkpoint reclaim, and if the new store restarted versions
   near 1, replaying both log sets would let stale high-version records
   shadow newer acked updates. *)
let ensure_version_above t version = bump_clock t version

let apply_put t ~key ~version ~columns =
  bump_clock t version;
  ignore
    (Tree.put_with t.tree key (fun old ->
         match old with
         | Some existing when Int64.compare existing.sversion version >= 0 -> existing
         | _ -> { sversion = version; scontent = Some (content_of t.vlayout columns) }))

let apply_remove t ~key ~version =
  bump_clock t version;
  ignore
    (Tree.put_with t.tree key (fun old ->
         match old with
         | Some existing when Int64.compare existing.sversion version >= 0 -> existing
         | _ -> { sversion = version; scontent = None }))

(* ---- reshard migration (version-carrying logged writes) ----

   The daemon's startup migration copies recovered bindings into fresh
   stores through the router.  A plain [put] would mint a fresh version,
   making "which copy wins" depend on migration order — and a stale copy
   of a re-homed key sitting in another dir's old logs could then shadow
   the real value on a later restart.  These entry points keep the
   recovered version: the replay guard picks the newest copy regardless
   of order, and the record lands in the fresh log under that same
   version so every subsequent replay agrees. *)

let migrate_put ?worker t ~key ~version ~columns =
  let worker = match worker with Some w -> w | None -> default_worker () in
  apply_put t ~key ~version ~columns;
  log_put t ~worker ~key ~version ~columns

let migrate_remove ?worker t ~key ~version =
  let worker = match worker with Some w -> w | None -> default_worker () in
  apply_remove t ~key ~version;
  log_remove t ~worker ~key ~version

let iter_entries t f =
  ignore
    (Tree.scan t.tree ~limit:max_int (fun k v ->
         f ~key:k ~version:v.sversion ~columns:(Option.map unpack v.scontent)))

(* ---- checkpoint / recovery ---- *)

let checkpoint ?vfs t ~dir ~writers =
  let began_us = Xutil.Clock.wall_us () in
  (* Pull-based snapshot stream: the scan runs concurrently with normal
     operation; each entry is some committed version of its key. *)
  let entries = ref [] in
  ignore
    (Tree.scan t.tree ~limit:max_int (fun k v ->
         match v.scontent with
         | Some c ->
             entries :=
               { Persist.Checkpoint.key = k; version = v.sversion; columns = unpack c }
               :: !entries
         | None -> ()));
  let remaining = ref !entries in
  let lock = Xutil.Spinlock.create () in
  let next () =
    Xutil.Spinlock.with_lock lock (fun () ->
        match !remaining with
        | [] -> None
        | e :: rest ->
            remaining := rest;
            Some e)
  in
  Persist.Checkpoint.write ?vfs ~dir ~writers ~began_us next

let sweep_tombstones t =
  let tombs = ref [] in
  ignore
    (Tree.scan t.tree ~limit:max_int (fun k v ->
         match v.scontent with None -> tombs := k :: !tombs | Some _ -> ()));
  List.iter (fun k -> ignore (Tree.remove t.tree k)) !tombs

let recover ?vfs ?logs ?layout ?replay_domains ?(keep_tombstones = false) ~log_paths
    ~checkpoint_dirs () =
  let t = create ?logs ?layout () in
  match
    Persist.Recovery.recover ?vfs ?replay_domains ~log_paths ~checkpoint_dirs
      ~put:(fun ~key ~version ~columns -> apply_put t ~key ~version ~columns)
      ~remove:(fun ~key ~version -> apply_remove t ~key ~version)
      ()
  with
  | Error e -> Error e
  | Ok stats ->
      if not keep_tombstones then sweep_tombstones t;
      Ok (t, stats)
