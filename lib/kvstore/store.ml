open Masstree_core

type value = { version : int64; columns : string array }

type layout = Contiguous | Columnar

(* The two §4.7 value representations.  [Flat] packs all columns into one
   string with an offset table — one allocation per value, whole-value
   copy on every update.  [Cols] keeps one block per column — updates
   share unmodified blocks structurally.  Both are immutable and swapped
   in with a single store, so multi-column puts stay atomic. *)
type content =
  | Flat of string * int array (* data, column end-offsets *)
  | Cols of string array

let pack columns =
  let n = Array.length columns in
  let offsets = Array.make n 0 in
  let total = ref 0 in
  Array.iteri
    (fun i c ->
      total := !total + String.length c;
      offsets.(i) <- !total)
    columns;
  let buf = Bytes.create !total in
  let pos = ref 0 in
  Array.iter
    (fun c ->
      Bytes.blit_string c 0 buf !pos (String.length c);
      pos := !pos + String.length c)
    columns;
  Flat (Bytes.unsafe_to_string buf, offsets)

let unpack = function
  | Cols a -> a
  | Flat (data, offsets) ->
      Array.mapi
        (fun i e ->
          let s = if i = 0 then 0 else offsets.(i - 1) in
          String.sub data s (e - s))
        offsets

let content_of layout columns =
  match layout with Contiguous -> pack columns | Columnar -> Cols columns

(* Stored values carry an optional tombstone state: during recovery a
   Remove record must shadow older Put records that may arrive later from
   other logs, so removes materialize as versioned tombstones and are
   swept once replay finishes.  Live operation stores tombstones only
   while snapshots are open (a remove must stay resolvable at older
   snapshot versions); the prune pass deletes them once no snapshot can
   see past them.

   [schain] is the MVCC version chain (docs/MVCC.md): payloads this head
   retired that some open snapshot may still read, newest first.  The
   chain travels with the head — one atomic tree store publishes both —
   and is empty whenever no snapshot was open at overwrite time. *)
type stored = {
  sversion : int64;
  scontent : content option;
  schain : content option Mvcc.Chain.t;
}

type t = {
  tree : stored Tree.t;
  logs : Persist.Logger.t array;
  vlayout : layout;
  (* Global version clock: distinct, increasing versions across all keys.
     The paper needs per-value increasing versions; a global counter also
     orders remove/reinsert pairs across different per-core logs.  (On the
     paper's 16 cores this would be a contended line; they use per-value
     counters plus timestamps.  See DESIGN.md §5.)  This clock is also the
     snapshot timestamp domain: a snapshot pins [max_version] at open and
     reads the newest version [<=] it everywhere. *)
  clock : int Atomic.t;
  (* MVCC state: the snapshot horizon (who is open, at what version), the
     set of keys whose chains/tombstones need pruning, and the live
     chained-version count behind the [mvcc.versions_live] gauge. *)
  snaps : Mvcc.Horizon.t;
  pending : (string, unit) Hashtbl.t;
  pending_lock : Xutil.Spinlock.t;
  prune_scheduled : bool Atomic.t;
  versions_live : int Atomic.t;
}

(* Hot-path metric handles, resolved once. *)
let obs_chain_len = Obs.Registry.histogram Obs.Registry.global "mvcc.chain_len"
let obs_snap_open = Obs.Registry.counter Obs.Registry.global "mvcc.snap_open_total"

let create ?(logs = [||]) ?(layout = Contiguous) () =
  {
    tree = Tree.create ();
    logs = Array.map Fun.id logs;
    vlayout = layout;
    clock = Atomic.make 1;
    snaps = Mvcc.Horizon.create ();
    pending = Hashtbl.create 64;
    pending_lock = Xutil.Spinlock.create ();
    prune_scheduled = Atomic.make false;
    versions_live = Atomic.make 0;
  }

let layout t = t.vlayout

let close t =
  Array.iter Persist.Logger.seal t.logs;
  Array.iter Persist.Logger.close t.logs

let next_version t = Int64.of_int (Atomic.fetch_and_add t.clock 1)

let max_version t = Int64.of_int (Atomic.get t.clock - 1)

let logger_for t worker =
  if Array.length t.logs = 0 then None
  else Some t.logs.(worker mod Array.length t.logs)

let log_put t ~worker ~key ~version ~columns =
  match logger_for t worker with
  | None -> ()
  | Some l ->
      Persist.Logger.append l
        (Persist.Logrec.Put
           { key; version; timestamp = Xutil.Clock.wall_us (); columns })

let log_remove t ~worker ~key ~version =
  match logger_for t worker with
  | None -> ()
  | Some l ->
      Persist.Logger.append l
        (Persist.Logrec.Remove { key; version; timestamp = Xutil.Clock.wall_us () })

let default_worker () = (Domain.self () :> int)

(* ---- MVCC plumbing ---- *)

(* Schedule points pinning the chain protocol's ordering-sensitive steps;
   lib/schedsim's mvcc scenarios interleave them (docs/MVCC.md). *)
let sp_open_pinned = Schedpoint.define "mvcc.open.pinned"
let sp_snap_read = Schedpoint.define "mvcc.snap.read"
let sp_chain_installed = Schedpoint.define "mvcc.chain.installed"
let sp_prune_pass = Schedpoint.define "mvcc.prune.pass"
let sp_snap_closed = Schedpoint.define "mvcc.snap.closed"

let snapshots_open t = Mvcc.Horizon.active t.snaps

let mvcc_versions_live t = Atomic.get t.versions_live

let note_pending t key =
  Xutil.Spinlock.with_lock t.pending_lock (fun () -> Hashtbl.replace t.pending key ())

(* Under the border lock: the chain for a new head that retires [old].
   [chained] is the writer's post-mint read of the horizon — when no
   snapshot was open, the retired payload is dead to everyone (any later
   open pins a version >= this write's), so the chain collapses to empty
   and the old entries die with it.  The caller applies [delta] to the
   live-version count after the tree store completes. *)
let retired_chain t ~chained ~delta ~len old =
  match old with
  | None -> Mvcc.Chain.empty
  | Some o ->
      if chained then begin
        let epoch = Epoch.global_epoch (Tree.epoch_manager t.tree) in
        let c = Mvcc.Chain.push o.schain ~version:o.sversion ~epoch o.scontent in
        delta := 1;
        len := Mvcc.Chain.length c;
        c
      end
      else begin
        delta := -Mvcc.Chain.length o.schain;
        Mvcc.Chain.empty
      end

let apply_version_delta t delta =
  if delta <> 0 then ignore (Atomic.fetch_and_add t.versions_live delta)

let prune_pass t =
  Schedpoint.hit sp_prune_pass;
  Atomic.set t.prune_scheduled false;
  let keys =
    Xutil.Spinlock.with_lock t.pending_lock (fun () ->
        let ks = Hashtbl.fold (fun k () acc -> k :: acc) t.pending [] in
        Hashtbl.reset t.pending;
        ks)
  in
  let survivors = ref [] in
  List.iter
    (fun key ->
      (* Truncate the chain to what some open snapshot can still read.
         The closure runs under the border lock, so the decision is
         atomic w.r.t. concurrent writers — pruning from a pre-read copy
         could resurrect versions a racing writer just retired.  The
         horizon is read {e inside} the closure for the same reason: a
         snapshot that opens after a single up-front read, followed by a
         chained overwrite of this key, needs the entry that overwrite
         retired — pruning it against the stale versions array would
         tear the snapshot's cut.  Any entry present when this closure
         runs was pushed under this same border lock by a writer whose
         version mint the needing snapshot's registration preceded
         (register-then-mint vs. mint-then-check ordering), so a horizon
         read here sees every snapshot that can still reach it. *)
      let delta = ref 0 in
      let survived = ref false in
      ignore
        (Tree.update t.tree key (fun st ->
             delta := 0;
             survived := false;
             match st.schain with
             | None -> st
             | Some _ ->
                 let snapshots = Mvcc.Horizon.versions t.snaps in
                 let chain =
                   Mvcc.Chain.prune st.schain ~death_of_head:st.sversion ~snapshots
                 in
                 delta := Mvcc.Chain.length chain - Mvcc.Chain.length st.schain;
                 if chain != Mvcc.Chain.empty then survived := true;
                 if !delta = 0 then st else { st with schain = chain }));
      apply_version_delta t !delta;
      (* A tombstone whose chain is gone is invisible to every snapshot
         (new opens pin versions past it; see docs/MVCC.md) — delete it.
         [remove_if] re-checks under the lock, so a concurrent reinsert
         is never clobbered. *)
      (match
         Tree.remove_if t.tree key (fun st ->
             st.scontent = None && st.schain = None)
       with
      | Some _ -> ()
      | None -> if !survived then survivors := key :: !survivors))
    keys;
  match !survivors with
  | [] -> ()
  | ks ->
      Xutil.Spinlock.with_lock t.pending_lock (fun () ->
          List.iter (fun k -> Hashtbl.replace t.pending k ()) ks)

let schedule_prune t =
  if not (Atomic.exchange t.prune_scheduled true) then
    Epoch.schedule (Tree.epoch_manager t.tree) (fun () -> prune_pass t)

(* A chain this long means rapid overwrites are outrunning reclamation
   (with one old snapshot open, all but one entry per key are already
   dead): self-schedule a pass so epoch ticks on the write path keep
   chains bounded even when nothing closes a snapshot and no external
   caller runs {!prune}.  Long-lived embedders should still call
   [prune]/[maintain] periodically — ticks only fire while ops flow. *)
let chain_prune_trigger = 4

(* After a chained install: account the new entry and sample the chain
   length (outside the border lock). *)
let note_chained t key ~delta ~len =
  apply_version_delta t delta;
  if len > 0 then Obs.Registry.observe obs_chain_len len;
  if delta > 0 then begin
    note_pending t key;
    Schedpoint.hit sp_chain_installed;
    if len >= chain_prune_trigger then schedule_prune t
  end

(* ---- reads ---- *)

let get_value t key =
  match Tree.get t.tree key with
  | Some { sversion; scontent = Some c; _ } -> Some { version = sversion; columns = unpack c }
  | Some { scontent = None; _ } | None -> None

let get t key = Option.map (fun v -> v.columns) (get_value t key)

let multi_get t keys =
  Array.map
    (function
      | Some { scontent = Some c; _ } -> Some (unpack c)
      | Some { scontent = None; _ } | None -> None)
    (Tree.multi_get_pipelined t.tree keys)

let select columns requested =
  Array.of_list
    (List.map
       (fun i -> if i >= 0 && i < Array.length columns then columns.(i) else "")
       requested)

let get_columns t key cols =
  Option.map (fun v -> select v.columns cols) (get_value t key)

(* ---- writes ---- *)

(* Writers mint their version {e before} reading the horizon: if the
   horizon read sees no open snapshot, any snapshot registered later
   pins a version >= this write's, so the new head itself is what that
   snapshot reads and the retired payload is safe to drop.  (The opener
   does the mirror ordering — register, then read the clock — inside
   [Mvcc.Horizon.open_].)

   Because the version is minted before the border lock is taken, two
   concurrent writers to the same key can arrive at the lock in the
   opposite of version order.  The closures below keep the existing head
   whenever its version is already >= the incoming one: the late writer
   serializes {e before} the head it found, its effect immediately
   overwritten — last-writer-wins by version, the same rule the replay
   guard applies.  Installing the smaller version instead would publish
   a head older than its own chain entries (breaking [Mvcc.Chain]'s
   descending order and snapshot resolution), and the loser skips its
   log record — the winner's newer record subsumes it, so replay matches
   the live tree.  Closures reset their out-refs on entry: a tree-level
   [Restart] can re-run them. *)

let put ?worker t key columns =
  let worker = match worker with Some w -> w | None -> default_worker () in
  let version = next_version t in
  let chained = Mvcc.Horizon.active t.snaps > 0 in
  let delta = ref 0 and len = ref 0 in
  let applied = ref false in
  ignore
    (Tree.put_with t.tree key (fun old ->
         delta := 0;
         len := 0;
         applied := false;
         match old with
         | Some existing when Int64.compare existing.sversion version >= 0 ->
             existing
         | _ ->
             applied := true;
             {
               sversion = version;
               scontent = Some (content_of t.vlayout (Array.copy columns));
               schain = retired_chain t ~chained ~delta ~len old;
             }));
  if !applied then begin
    note_chained t key ~delta:!delta ~len:!len;
    log_put t ~worker ~key ~version ~columns
  end

let put_columns ?worker t key updates =
  let worker = match worker with Some w -> w | None -> default_worker () in
  let version = next_version t in
  let chained = Mvcc.Horizon.active t.snaps > 0 in
  let result = ref [||] in
  let delta = ref 0 and len = ref 0 in
  let applied = ref false in
  ignore
    (Tree.put_with t.tree key (fun old ->
         delta := 0;
         len := 0;
         applied := false;
         match old with
         | Some existing when Int64.compare existing.sversion version >= 0 ->
             existing
         | _ ->
         applied := true;
         let base =
           match old with
           | Some { scontent = Some c; _ } -> unpack c
           | Some { scontent = None; _ } | None -> [||]
         in
         let width =
           List.fold_left (fun w (i, _) -> max w (i + 1)) (Array.length base) updates
         in
         (* Copy-on-write merge: the value object is fresh and the single
            pointer store in the tree publishes all modified columns at
            once (§4.7).  Under Columnar layout unmodified column blocks
            are shared; under Contiguous the whole value is re-packed. *)
         let merged = Array.make width "" in
         Array.blit base 0 merged 0 (Array.length base);
         List.iter (fun (i, c) -> if i >= 0 then merged.(i) <- c) updates;
         result := merged;
         {
           sversion = version;
           scontent = Some (content_of t.vlayout merged);
           schain = retired_chain t ~chained ~delta ~len old;
         }));
  if !applied then begin
    note_chained t key ~delta:!delta ~len:!len;
    log_put t ~worker ~key ~version ~columns:!result
  end

let remove ?worker t key =
  let worker = match worker with Some w -> w | None -> default_worker () in
  let version = next_version t in
  let chained = Mvcc.Horizon.active t.snaps > 0 in
  if not chained then begin
    (* No snapshot open when the version was minted: a plain delete.
       Any snapshot opening concurrently pins a version >= [version],
       which resolves this key to absent — exactly what deleting shows
       it.  Chain entries hanging off the old head die with it (their
       lifetimes all end before [version]). *)
    match Tree.remove t.tree key with
    | Some { scontent = Some _; schain; _ } ->
        apply_version_delta t (-Mvcc.Chain.length schain);
        log_remove t ~worker ~key ~version;
        true
    | Some { scontent = None; schain; _ } ->
        apply_version_delta t (-Mvcc.Chain.length schain);
        false
    | None -> false
  end
  else begin
    (* Snapshots are open: the remove must stay resolvable at their
       versions, so install a versioned tombstone that chains the
       retired value.  [Tree.update] never inserts — removing an absent
       key must not materialize a tombstone for it. *)
    let removed = ref false in
    let delta = ref 0 and len = ref 0 in
    ignore
      (Tree.update t.tree key (fun old ->
           removed := false;
           delta := 0;
           len := 0;
           if Int64.compare old.sversion version >= 0 then
             (* A concurrent writer already published a newer head: this
                remove serializes before it and its effect is gone (see
                the version-inversion note above [put]).  Tombstoning
                with the smaller version would invert the chain. *)
             old
           else
             match old.scontent with
             | None -> old (* already a tombstone; nothing to remove *)
             | Some _ ->
                 removed := true;
                 {
                   sversion = version;
                   scontent = None;
                   schain = retired_chain t ~chained:true ~delta ~len (Some old);
                 }));
    if !removed then begin
      note_chained t key ~delta:!delta ~len:!len;
      (* The tombstone itself needs pruning once snapshots drain. *)
      note_pending t key;
      log_remove t ~worker ~key ~version;
      true
    end
    else false
  end

(* ---- scans ---- *)

let getrange t ~start ?columns ~limit f =
  if limit <= 0 then 0
  else begin
    let emitted = ref 0 in
    let exception Done in
    (try
       ignore
         (Tree.scan t.tree ~start ~limit:max_int (fun k v ->
              match v.scontent with
              | None -> ()
              | Some content ->
                  let cols = unpack content in
                  let out = match columns with None -> cols | Some c -> select cols c in
                  f k out;
                  incr emitted;
                  if !emitted >= limit then raise Done))
     with Done -> ());
    !emitted
  end

let getrange_rev t ?start ?columns ~limit f =
  if limit <= 0 then 0
  else begin
    let emitted = ref 0 in
    let exception Done in
    (try
       ignore
         (Tree.scan_rev t.tree ?start ~limit:max_int (fun k v ->
              match v.scontent with
              | None -> ()
              | Some content ->
                  let cols = unpack content in
                  let out = match columns with None -> cols | Some c -> select cols c in
                  f k out;
                  incr emitted;
                  if !emitted >= limit then raise Done))
     with Done -> ());
    !emitted
  end

let cardinal t =
  let n = ref 0 in
  ignore
    (Tree.scan t.tree ~limit:max_int (fun _ v ->
         match v.scontent with Some _ -> incr n | None -> ()));
  !n

(* ---- snapshots ---- *)

(* The state of [key] as of version [at]: [None] = no version that old
   (born later, or pruned — the opener's ordering makes the latter
   unreachable for open snapshots); [Some None] = tombstone (absent);
   [Some (Some c)] = the payload. *)
let resolve_at st ~at =
  if Int64.compare st.sversion at <= 0 then Some st.scontent
  else
    match Mvcc.Chain.find st.schain ~at with
    | Some e -> Some e.Mvcc.Chain.payload
    | None -> None

module Snapshot = struct
  type store = t

  type snap = { sstore : store; ticket : Mvcc.Horizon.ticket; sclosed : bool Atomic.t }

  let open_ (t : store) =
    Obs.Registry.incr obs_snap_open;
    let ticket =
      Mvcc.Horizon.open_ t.snaps
        ~mint:(fun () -> max_version t)
        ~epoch:(fun () -> Epoch.global_epoch (Tree.epoch_manager t.tree))
    in
    Schedpoint.hit sp_open_pinned;
    { sstore = t; ticket; sclosed = Atomic.make false }

  let version s = Mvcc.Horizon.version s.ticket
  let epoch s = Mvcc.Horizon.epoch s.ticket

  let check_open s =
    if Atomic.get s.sclosed then invalid_arg "Store.Snapshot: use after close"

  let read_value s key =
    check_open s;
    let at = version s in
    Schedpoint.hit sp_snap_read;
    match Tree.get s.sstore.tree key with
    | None -> None
    | Some st -> (
        match resolve_at st ~at with
        | None | Some None -> None
        | Some (Some c) -> Some (unpack c))

  let read s key = read_value s key

  let read_columns s key cols = Option.map (fun v -> select v cols) (read_value s key)

  let getrange s ~start ?columns ~limit f =
    check_open s;
    if limit <= 0 then 0
    else begin
      let at = version s in
      let emitted = ref 0 in
      let exception Done in
      (try
         ignore
           (Tree.scan s.sstore.tree ~start ~limit:max_int (fun k st ->
                Schedpoint.hit sp_snap_read;
                match resolve_at st ~at with
                | None | Some None -> ()
                | Some (Some content) ->
                    let cols = unpack content in
                    let out =
                      match columns with None -> cols | Some c -> select cols c
                    in
                    f k out;
                    incr emitted;
                    if !emitted >= limit then raise Done))
       with Done -> ());
      !emitted
    end

  (* Replication bootstrap feed: [getrange] that also yields each
     resolved entry's version, so the receiver can apply through the
     version-carrying migrate path and a concurrent log tail can race
     the feed safely (newest version wins either way).  Tombstones at
     the cut are skipped — the feed seeds an empty store. *)
  let getrange_versioned s ~start ~limit f =
    check_open s;
    if limit <= 0 then 0
    else begin
      let at = version s in
      let emitted = ref 0 in
      let exception Done in
      (try
         ignore
           (Tree.scan s.sstore.tree ~start ~limit:max_int (fun k st ->
                Schedpoint.hit sp_snap_read;
                let resolved =
                  if Int64.compare st.sversion at <= 0 then
                    Some (st.sversion, st.scontent)
                  else
                    match Mvcc.Chain.find st.schain ~at with
                    | Some e -> Some (e.Mvcc.Chain.version, e.Mvcc.Chain.payload)
                    | None -> None
                in
                match resolved with
                | None | Some (_, None) -> ()
                | Some (v, Some content) ->
                    f k v (unpack content);
                    incr emitted;
                    if !emitted >= limit then raise Done))
       with Done -> ());
      !emitted
    end

  let close s =
    if not (Atomic.exchange s.sclosed true) then begin
      Mvcc.Horizon.close s.sstore.snaps s.ticket;
      Schedpoint.hit sp_snap_closed;
      (* The horizon moved: chains this snapshot was pinning may now be
         prunable.  Run the pass at the next tick/quiesce. *)
      schedule_prune s.sstore
    end
end

let prune t = prune_pass t

let maintain t =
  prune_pass t;
  Tree.maintain t.tree

let tree_stats t = Tree.stats t.tree

let pool_stats t = Pool.stats (Tree.pool t.tree)
let pool_footprint t = Pool.footprint_bytes (Tree.pool t.tree)
let pool_consistency t = Tree.pool_consistency t.tree

(* Publish this store's live tree counters (and its loggers' buffer
   occupancy) as gauges on the global registry.  Gauge registration
   replaces by name, so the most recently registered store owns the
   [masstree.*] names — exactly what a server process wants after
   recovery swaps stores. *)
let register_obs t =
  let g = Obs.Registry.global in
  let st = Tree.stats t.tree in
  List.iter
    (fun c ->
      Obs.Registry.gauge g
        ("masstree." ^ Stats.name c)
        (fun () -> Stats.read st c))
    Stats.all;
  if Array.length t.logs > 0 then
    Obs.Registry.gauge g "log.buffered_bytes" (fun () ->
        Array.fold_left (fun a l -> a + Persist.Logger.buffered_bytes l) 0 t.logs);
  (* Node-arena occupancy: slab counts, live cells/blobs, off-heap
     footprint, and the epoch-deferred free backlog (a growing backlog
     means retires are outpacing quiescence). *)
  let pool = Tree.pool t.tree in
  Obs.Registry.gauge g "pool.cell_slabs" (fun () -> (Pool.stats pool).Pool.cell_slabs);
  Obs.Registry.gauge g "pool.blob_slabs" (fun () -> (Pool.stats pool).Pool.blob_slabs);
  Obs.Registry.gauge g "pool.cells_live" (fun () -> (Pool.stats pool).Pool.cells_live);
  Obs.Registry.gauge g "pool.blobs_live" (fun () -> (Pool.stats pool).Pool.blobs_live);
  Obs.Registry.gauge g "pool.blob_bytes_live" (fun () ->
      (Pool.stats pool).Pool.blob_bytes_live);
  Obs.Registry.gauge g "pool.deferred_frees" (fun () ->
      (Pool.stats pool).Pool.deferred_frees);
  Obs.Registry.gauge g "pool.refills" (fun () -> (Pool.stats pool).Pool.refills);
  Obs.Registry.gauge g "pool.footprint_bytes" (fun () -> Pool.footprint_bytes pool);
  Obs.Registry.register_gc g;
  (* MVCC health: chained versions alive, snapshots pinning them, and
     how far (in EBR epochs) the oldest open snapshot lags the present.
     mvcc.chain_len / mvcc.snap_open_total are recorded at the write
     sites (module-level handles above). *)
  Obs.Registry.gauge g "mvcc.versions_live" (fun () -> mvcc_versions_live t);
  Obs.Registry.gauge g "mvcc.snapshots_open" (fun () -> snapshots_open t);
  Obs.Registry.gauge g "mvcc.prune_lag_epochs" (fun () ->
      match Mvcc.Horizon.oldest_epoch t.snaps with
      | None -> 0
      | Some e -> max 0 (Epoch.global_epoch (Tree.epoch_manager t.tree) - e))

let check t = Tree.check t.tree

(* ---- replay entry points (version-guarded, tombstone-aware) ---- *)

let bump_clock t version =
  let v = Int64.to_int version + 1 in
  let rec go () =
    let cur = Atomic.get t.clock in
    if v > cur && not (Atomic.compare_and_set t.clock cur v) then go ()
  in
  go ()

(* A store populated by copying another store's live bindings (the server
   daemon's startup migration) must continue the source's version clock:
   its fresh logs coexist on disk with the previous incarnation's until
   the first checkpoint reclaim, and if the new store restarted versions
   near 1, replaying both log sets would let stale high-version records
   shadow newer acked updates. *)
let ensure_version_above t version = bump_clock t version

(* Replay and migration install heads only, never chains: checkpoints
   and logs hold single versions per record, and both paths run on
   stores no snapshot is open against (asserted in [recover]).  Should a
   migration ever race an open snapshot, the retired payload is chained
   like any other write. *)

let apply_put t ~key ~version ~columns =
  bump_clock t version;
  let chained = Mvcc.Horizon.active t.snaps > 0 in
  let delta = ref 0 and len = ref 0 in
  ignore
    (Tree.put_with t.tree key (fun old ->
         delta := 0;
         len := 0;
         match old with
         | Some existing when Int64.compare existing.sversion version >= 0 -> existing
         | _ ->
             {
               sversion = version;
               scontent = Some (content_of t.vlayout columns);
               schain = retired_chain t ~chained ~delta ~len old;
             }));
  note_chained t key ~delta:!delta ~len:!len

let apply_remove t ~key ~version =
  bump_clock t version;
  let chained = Mvcc.Horizon.active t.snaps > 0 in
  let delta = ref 0 and len = ref 0 in
  ignore
    (Tree.put_with t.tree key (fun old ->
         delta := 0;
         len := 0;
         match old with
         | Some existing when Int64.compare existing.sversion version >= 0 -> existing
         | _ ->
             {
               sversion = version;
               scontent = None;
               schain = retired_chain t ~chained ~delta ~len old;
             }));
  note_chained t key ~delta:!delta ~len:!len

(* ---- reshard migration (version-carrying logged writes) ----

   The daemon's startup migration copies recovered bindings into fresh
   stores through the router.  A plain [put] would mint a fresh version,
   making "which copy wins" depend on migration order — and a stale copy
   of a re-homed key sitting in another dir's old logs could then shadow
   the real value on a later restart.  These entry points keep the
   recovered version: the replay guard picks the newest copy regardless
   of order, and the record lands in the fresh log under that same
   version so every subsequent replay agrees. *)

let migrate_put ?worker t ~key ~version ~columns =
  let worker = match worker with Some w -> w | None -> default_worker () in
  apply_put t ~key ~version ~columns;
  log_put t ~worker ~key ~version ~columns

let migrate_remove ?worker t ~key ~version =
  let worker = match worker with Some w -> w | None -> default_worker () in
  apply_remove t ~key ~version;
  log_remove t ~worker ~key ~version

let iter_entries t f =
  ignore
    (Tree.scan t.tree ~limit:max_int (fun k v ->
         f ~key:k ~version:v.sversion ~columns:(Option.map unpack v.scontent)))

(* ---- checkpoint / recovery ---- *)

let checkpoint ?vfs ?(snapshot = true) t ~dir ~writers =
  let began_us = Xutil.Clock.wall_us () in
  let entries = ref [] in
  if snapshot then begin
    (* Walk a pinned snapshot: one consistent cut, no races with
       foreground puts (they chain retired values instead of fighting
       the scan), and only heads visible at the cut are emitted —
       chains are never persisted ({!Persist.Checkpoint.entry} has no
       chain field; recovery replays single versions). *)
    let s = Snapshot.open_ t in
    let at = Snapshot.version s in
    Fun.protect
      ~finally:(fun () -> Snapshot.close s)
      (fun () ->
        ignore
          (Tree.scan t.tree ~limit:max_int (fun k st ->
               (* Resolve at the cut, keeping the resolved entry's own
                  version — the recovery replay guard compares per-key
                  versions against log records. *)
               let resolved =
                 if Int64.compare st.sversion at <= 0 then Some (st.sversion, st.scontent)
                 else
                   match Mvcc.Chain.find st.schain ~at with
                   | Some e -> Some (e.Mvcc.Chain.version, e.Mvcc.Chain.payload)
                   | None -> None
               in
               match resolved with
               | Some (version, Some c) ->
                   entries :=
                     { Persist.Checkpoint.key = k; version; columns = unpack c }
                     :: !entries
               | Some (_, None) | None -> ())))
  end
  else
    (* Legacy pull-based stream: the scan runs concurrently with normal
       operation; each entry is some committed version of its key (the
       pre-MVCC behavior, kept as the interference baseline for
       [bench ckpt]). *)
    ignore
      (Tree.scan t.tree ~limit:max_int (fun k v ->
           match v.scontent with
           | Some c ->
               entries :=
                 { Persist.Checkpoint.key = k; version = v.sversion; columns = unpack c }
                 :: !entries
           | None -> ()));
  let remaining = ref !entries in
  let lock = Xutil.Spinlock.create () in
  let next () =
    Xutil.Spinlock.with_lock lock (fun () ->
        match !remaining with
        | [] -> None
        | e :: rest ->
            remaining := rest;
            Some e)
  in
  Persist.Checkpoint.write ?vfs ~dir ~writers ~began_us next

let sweep_tombstones t =
  let tombs = ref [] in
  ignore
    (Tree.scan t.tree ~limit:max_int (fun k v ->
         match v.scontent with None -> tombs := k :: !tombs | Some _ -> ()));
  (* [remove_if] re-checks the tombstone state under the border lock, so
     a key concurrently reinstated between the scan and the sweep is
     left alone (this used to be a quiescent-only pass). *)
  List.iter
    (fun k ->
      ignore
        (Tree.remove_if t.tree k (fun st ->
             st.scontent = None && st.schain = None)))
    !tombs

let recover ?vfs ?logs ?layout ?replay_domains ?(keep_tombstones = false) ~log_paths
    ~checkpoint_dirs () =
  let t = create ?logs ?layout () in
  (* Snapshots never survive a restart: checkpoints and logs persist
     single versions only (no chain ever reaches disk — the entry type
     has no chain field), so replay rebuilds bare heads.  A fresh store
     must therefore have an empty horizon; a wire-level snapshot id from
     a previous incarnation reports a typed error at the server layer. *)
  assert (Mvcc.Horizon.active t.snaps = 0);
  match
    Persist.Recovery.recover ?vfs ?replay_domains ~log_paths ~checkpoint_dirs
      ~put:(fun ~key ~version ~columns -> apply_put t ~key ~version ~columns)
      ~remove:(fun ~key ~version -> apply_remove t ~key ~version)
      ()
  with
  | Error e -> Error e
  | Ok stats ->
      if not keep_tombstones then sweep_tombstones t;
      (* Replay installed heads only (no snapshot was open). *)
      assert (mvcc_versions_live t = 0);
      Ok (t, stats)
