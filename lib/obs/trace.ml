let key_prefix_len = 16

type ring = {
  slots : Snapshot.slow_op option array;
  mutable cursor : int; (* next write position, monotonically increasing *)
}

type t = {
  rings : ring array;
  mask : int; (* capacity - 1 *)
  threshold : int Atomic.t;
}

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ?(workers = 64) ?(capacity = 16) ?(threshold_us = 1000) () =
  let cap = next_pow2 (max 1 capacity) in
  {
    rings =
      Array.init (max 1 workers) (fun _ ->
          { slots = Array.make cap None; cursor = 0 });
    mask = cap - 1;
    threshold = Atomic.make threshold_us;
  }

let threshold_us t = Atomic.get t.threshold

let set_threshold_us t v = Atomic.set t.threshold v

let record t ~worker ~op ~key ~dur_us =
  let key =
    if String.length key <= key_prefix_len then key
    else String.sub key 0 key_prefix_len
  in
  let entry =
    { Snapshot.at_us = Xutil.Clock.wall_us (); worker; op; key; dur_us }
  in
  let r = t.rings.(worker mod Array.length t.rings) in
  r.slots.(r.cursor land t.mask) <- Some entry;
  r.cursor <- r.cursor + 1

let maybe_record t ~worker ~op ~key ~dur_us =
  if dur_us >= Atomic.get t.threshold then record t ~worker ~op ~key ~dur_us

let recent ?(limit = 32) t =
  let all = ref [] in
  Array.iter
    (fun r ->
      Array.iter
        (function Some e -> all := e :: !all | None -> ())
        r.slots)
    t.rings;
  let newest_first =
    List.sort
      (fun a b -> Int64.compare b.Snapshot.at_us a.Snapshot.at_us)
      !all
  in
  List.filteri (fun i _ -> i < limit) newest_first

let clear t =
  Array.iter
    (fun r ->
      Array.fill r.slots 0 (Array.length r.slots) None;
      r.cursor <- 0)
    t.rings
