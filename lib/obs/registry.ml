open Xutil

type counter = { c_shards : int Atomic.t array; c_mask : int; c_on : bool Atomic.t }

type histo = { h_shards : Histogram.t array; h_mask : int; h_on : bool Atomic.t }

type t = {
  shards : int;
  enabled : bool Atomic.t;
  lock : Mutex.t; (* guards the three name tables below *)
  counters : (string, counter) Hashtbl.t;
  histos : (string, histo) Hashtbl.t;
  gauges : (string, unit -> int) Hashtbl.t;
  tr : Trace.t;
}

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ?(shards = 16) () =
  let shards = next_pow2 (max 1 shards) in
  {
    shards;
    enabled = Atomic.make true;
    lock = Mutex.create ();
    counters = Hashtbl.create 32;
    histos = Hashtbl.create 32;
    gauges = Hashtbl.create 32;
    tr = Trace.create ~workers:shards ();
  }

let global = create ()

let is_enabled t = Atomic.get t.enabled

let set_enabled t b = Atomic.set t.enabled b

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let counter t name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.counters name with
      | Some c -> c
      | None ->
          let c =
            {
              c_shards = Array.init t.shards (fun _ -> Atomic.make 0);
              c_mask = t.shards - 1;
              c_on = t.enabled;
            }
          in
          Hashtbl.add t.counters name c;
          c)

let shard_id = function
  | Some w -> w
  | None -> (Domain.self () :> int)

let add ?worker c n =
  if Atomic.get c.c_on then
    ignore (Atomic.fetch_and_add c.c_shards.(shard_id worker land c.c_mask) n)

let incr ?worker c = add ?worker c 1

let counter_value c = Array.fold_left (fun a s -> a + Atomic.get s) 0 c.c_shards

let histogram t name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.histos name with
      | Some h -> h
      | None ->
          let h =
            {
              h_shards = Array.init t.shards (fun _ -> Histogram.create ());
              h_mask = t.shards - 1;
              h_on = t.enabled;
            }
          in
          Hashtbl.add t.histos name h;
          h)

let observe ?worker h v =
  if Atomic.get h.h_on then
    Histogram.add h.h_shards.(shard_id worker land h.h_mask) v

let gauge t name f = with_lock t (fun () -> Hashtbl.replace t.gauges name f)

(* GC health as gauges: sampled (via the thunks) whenever a snapshot is
   taken — the server's stats timer or the Stats wire command — so pause
   sources show up next to the tree and pool metrics they explain.
   [Gc.quick_stat] doesn't walk the heap; cheap enough per sample. *)
let register_gc t =
  gauge t "gc.minor_collections" (fun () -> (Gc.quick_stat ()).Gc.minor_collections);
  gauge t "gc.major_collections" (fun () -> (Gc.quick_stat ()).Gc.major_collections);
  gauge t "gc.compactions" (fun () -> (Gc.quick_stat ()).Gc.compactions);
  gauge t "gc.heap_words" (fun () -> (Gc.quick_stat ()).Gc.heap_words);
  gauge t "gc.top_heap_words" (fun () -> (Gc.quick_stat ()).Gc.top_heap_words);
  gauge t "gc.allocated_words" (fun () ->
      let s = Gc.quick_stat () in
      int_of_float (s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words))

let trace t = t.tr

let snapshot t =
  let counters, gauges, hists =
    with_lock t (fun () ->
        ( Hashtbl.fold (fun n c acc -> (n, c) :: acc) t.counters [],
          Hashtbl.fold (fun n f acc -> (n, f) :: acc) t.gauges [],
          Hashtbl.fold (fun n h acc -> (n, h) :: acc) t.histos [] ))
  in
  let counters = List.map (fun (n, c) -> (n, counter_value c)) counters in
  let gauges =
    List.map (fun (n, f) -> (n, try f () with _ -> 0)) gauges
  in
  let hists =
    List.map
      (fun (n, h) ->
        let merged = Histogram.create () in
        Array.iter (fun s -> Histogram.merge_into ~dst:merged s) h.h_shards;
        (n, Snapshot.summarize merged))
      hists
  in
  {
    Snapshot.taken_at_us = Clock.wall_us ();
    counters;
    gauges;
    hists;
    slow = Trace.recent t.tr;
  }

let reset t =
  with_lock t (fun () ->
      Hashtbl.iter
        (fun _ c -> Array.iter (fun s -> Atomic.set s 0) c.c_shards)
        t.counters;
      Hashtbl.iter
        (fun _ h -> Array.iter Histogram.clear h.h_shards)
        t.histos);
  Trace.clear t.tr
