open Xutil

type hist_summary = {
  count : int;
  sum : int;
  minimum : int;
  maximum : int;
  p50 : int;
  p90 : int;
  p99 : int;
  p999 : int;
}

type slow_op = {
  at_us : int64;
  worker : int;
  op : string;
  key : string;
  dur_us : int;
}

type t = {
  taken_at_us : int64;
  counters : (string * int) list;
  gauges : (string * int) list;
  hists : (string * hist_summary) list;
  slow : slow_op list;
}

let empty =
  { taken_at_us = 0L; counters = []; gauges = []; hists = []; slow = [] }

let summarize h =
  {
    count = Histogram.count h;
    sum = Histogram.total h;
    minimum = Histogram.min_value h;
    maximum = Histogram.max_value h;
    p50 = Histogram.percentile h 50.0;
    p90 = Histogram.percentile h 90.0;
    p99 = Histogram.percentile h 99.0;
    p999 = Histogram.percentile h 99.9;
  }

(* Zigzag for gauge values, which (unlike counters) may go negative. *)
let write_zig w v = Binio.write_varint w (if v >= 0 then 2 * v else (-2 * v) - 1)

let read_zig r =
  let z = Binio.read_varint r in
  if z land 1 = 0 then z / 2 else -((z + 1) / 2)

let write_assoc w write_v l =
  Binio.write_varint w (List.length l);
  List.iter
    (fun (name, v) ->
      Binio.write_string w name;
      write_v w v)
    l

let read_assoc r read_v =
  let n = Binio.read_varint r in
  if n > 1 lsl 16 then raise Binio.Truncated;
  List.init n (fun _ ->
      let name = Binio.read_string r in
      (name, read_v r))

let write_summary w s =
  Binio.write_varint w s.count;
  Binio.write_varint w s.sum;
  Binio.write_varint w s.minimum;
  Binio.write_varint w s.maximum;
  Binio.write_varint w s.p50;
  Binio.write_varint w s.p90;
  Binio.write_varint w s.p99;
  Binio.write_varint w s.p999

let read_summary r =
  let count = Binio.read_varint r in
  let sum = Binio.read_varint r in
  let minimum = Binio.read_varint r in
  let maximum = Binio.read_varint r in
  let p50 = Binio.read_varint r in
  let p90 = Binio.read_varint r in
  let p99 = Binio.read_varint r in
  let p999 = Binio.read_varint r in
  { count; sum; minimum; maximum; p50; p90; p99; p999 }

let write_slow w s =
  Binio.write_u64 w s.at_us;
  Binio.write_varint w s.worker;
  Binio.write_string w s.op;
  Binio.write_string w s.key;
  Binio.write_varint w s.dur_us

let read_slow r =
  let at_us = Binio.read_u64 r in
  let worker = Binio.read_varint r in
  let op = Binio.read_string r in
  let key = Binio.read_string r in
  let dur_us = Binio.read_varint r in
  { at_us; worker; op; key; dur_us }

let write w t =
  Binio.write_u64 w t.taken_at_us;
  write_assoc w Binio.write_varint t.counters;
  write_assoc w write_zig t.gauges;
  write_assoc w write_summary t.hists;
  Binio.write_varint w (List.length t.slow);
  List.iter (write_slow w) t.slow

let read r =
  let taken_at_us = Binio.read_u64 r in
  let counters = read_assoc r Binio.read_varint in
  let gauges = read_assoc r read_zig in
  let hists = read_assoc r read_summary in
  let n = Binio.read_varint r in
  if n > 1 lsl 16 then raise Binio.Truncated;
  let slow = List.init n (fun _ -> read_slow r) in
  { taken_at_us; counters; gauges; hists; slow }

let pp fmt t =
  let sorted l = List.sort (fun (a, _) (b, _) -> String.compare a b) l in
  Format.fprintf fmt "@[<v>";
  if t.counters <> [] then begin
    Format.fprintf fmt "counters:@,";
    List.iter
      (fun (n, v) -> Format.fprintf fmt "  %-28s %d@," n v)
      (sorted t.counters)
  end;
  if t.gauges <> [] then begin
    Format.fprintf fmt "gauges:@,";
    List.iter
      (fun (n, v) -> Format.fprintf fmt "  %-28s %d@," n v)
      (sorted t.gauges)
  end;
  if t.hists <> [] then begin
    Format.fprintf fmt "latency (us):@,";
    Format.fprintf fmt "  %-22s %10s %8s %8s %8s %8s %8s@," "" "count" "p50"
      "p99" "p99.9" "max" "mean";
    List.iter
      (fun (n, s) ->
        if s.count > 0 then
          Format.fprintf fmt "  %-22s %10d %8d %8d %8d %8d %8.0f@," n s.count
            s.p50 s.p99 s.p999 s.maximum
            (float_of_int s.sum /. float_of_int s.count))
      (sorted t.hists)
  end;
  if t.slow <> [] then begin
    Format.fprintf fmt "recent slow ops:@,";
    List.iter
      (fun s ->
        Format.fprintf fmt "  w%-2d %-9s %8dus  %S@," s.worker s.op s.dur_us
          s.key)
      t.slow
  end;
  Format.fprintf fmt "@]"
