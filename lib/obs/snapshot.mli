(** A point-in-time view of the telemetry registry: plain data, no
    references back into live metric structures, so it can travel over the
    wire (the protocol's [Stats] response body is one of these) and be
    compared structurally in tests. *)

type hist_summary = {
  count : int;
  sum : int;
  minimum : int;
  maximum : int;
  p50 : int;
  p90 : int;
  p99 : int;
  p999 : int;
}

type slow_op = {
  at_us : int64; (** wall-clock capture time, microseconds *)
  worker : int;
  op : string; (** operation kind, e.g. ["get"] *)
  key : string; (** key prefix (truncated, see {!Trace.key_prefix_len}) *)
  dur_us : int;
}

type t = {
  taken_at_us : int64;
  counters : (string * int) list;
  gauges : (string * int) list;
  hists : (string * hist_summary) list;
  slow : slow_op list; (** newest first *)
}

val empty : t

val summarize : Xutil.Histogram.t -> hist_summary

val write : Xutil.Binio.writer -> t -> unit
(** Wire encoding (see docs/PROTOCOL.md, response tag 7). *)

val read : Xutil.Binio.reader -> t
(** @raise Xutil.Binio.Truncated on malformed input. *)

val pp : Format.formatter -> t -> unit
(** Human-readable multi-line dump ([mtclient stats], [--stats-interval]
    reporters). *)
