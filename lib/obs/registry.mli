(** Named-metric registry: atomic counters, sampled gauges, and
    per-worker-sharded latency histograms, plus an embedded slow-op
    {!Trace} ring — cheap enough to leave on in the hot path.

    {b Hot-path cost.}  Call sites resolve a metric handle once
    ([counter] / [histogram] take a lock) and then record through it
    ([incr] / [add] / [observe]), which is one enabled-flag load plus one
    sharded update — no allocation, no locks.  Shards are selected by the
    caller's worker id (falling back to the current domain id), so
    concurrent workers do not contend on a cache line.

    {b Consistency.}  Counter updates are atomic and never lost.
    Histogram shards have a single logical writer per worker; if two
    threads share a worker id their updates may race and drop a sample —
    acceptable for latency distributions, documented here so nobody
    builds an invariant on histogram counts.  [snapshot] reads everything
    racily without stopping writers.

    The process-wide {!global} registry is what the server stack
    (kvserver engine, persist logger, kvstore store) records into;
    isolated registries ([create]) serve tests and embedders. *)

type t

type counter

type histo

val create : ?shards:int -> unit -> t
(** [create ()] makes an enabled registry with [shards] (default 16,
    rounded up to a power of two) shards per counter/histogram. *)

val global : t
(** The process-wide registry, enabled by default.  Disable it to
    measure (or remove) telemetry overhead. *)

val is_enabled : t -> bool

val set_enabled : t -> bool -> unit
(** When disabled, [incr]/[add]/[observe] return immediately and
    {!trace} recording stops; handles stay valid and counts resume on
    re-enable. *)

val counter : t -> string -> counter
(** Get or create the named counter.  Same name, same counter. *)

val incr : ?worker:int -> counter -> unit

val add : ?worker:int -> counter -> int -> unit

val counter_value : counter -> int
(** Sum across shards (racy but never undercounts a completed [add]). *)

val histogram : t -> string -> histo
(** Get or create the named histogram (values are conventionally
    microseconds). *)

val observe : ?worker:int -> histo -> int -> unit

val gauge : t -> string -> (unit -> int) -> unit
(** [gauge t name f] registers [f] to be sampled at snapshot time.
    Re-registering a name replaces the previous callback (so a
    newly-created store can take over its gauges from a dead one).  A
    callback that raises is reported as 0. *)

val register_gc : t -> unit
(** Register [gc.*] gauges (minor/major collection counts, compactions,
    live and peak heap words, cumulative allocated words) backed by
    [Gc.quick_stat].  Gauges are sampled at {!snapshot} time, so the
    server's stats timer and the Stats wire command see fresh values. *)

val trace : t -> Trace.t
(** The registry's slow-op ring. *)

val snapshot : t -> Snapshot.t
(** Capture everything: counter sums, sampled gauges, merged histogram
    summaries, and the most recent slow ops.  Runs concurrently with
    recording; taken even when the registry is disabled (it reports
    whatever was recorded while enabled). *)

val reset : t -> unit
(** Zero all counters and histograms and clear the trace ring; gauges
    keep their callbacks.  Test helper. *)
