(** Fixed-size per-worker slow-operation trace rings.

    Each worker owns one ring (single writer, like the loopback
    transport's {!Xutil.Spsc_ring} queues), so recording is a bounds
    check, an array store, and a cursor bump — no locks, no allocation
    beyond the captured entry.  When a ring is full the oldest entry is
    overwritten: the ring always holds the most recent [capacity] slow
    ops per worker.

    Readers ([recent], feeding {!Snapshot.t}) scan the rings racily; a
    snapshot taken concurrently with recording may miss or duplicate the
    entry being written this instant, never anything older. *)

type t

val key_prefix_len : int
(** Captured keys are truncated to this many bytes (16): enough to
    identify the key range, bounded so tracing never hauls large keys
    around. *)

val create : ?workers:int -> ?capacity:int -> ?threshold_us:int -> unit -> t
(** [create ()] makes rings for [workers] (default 64; worker ids are
    folded onto the rings by modulo) of [capacity] entries each (default
    16, rounded up to a power of two).  Operations slower than
    [threshold_us] (default 1000) are captured by {!maybe_record}. *)

val threshold_us : t -> int

val set_threshold_us : t -> int -> unit
(** Takes effect for subsequent records; settable at runtime
    ([mtd --slow-us]). *)

val record : t -> worker:int -> op:string -> key:string -> dur_us:int -> unit
(** Unconditionally capture one entry (the key is truncated to
    {!key_prefix_len}). *)

val maybe_record :
  t -> worker:int -> op:string -> key:string -> dur_us:int -> unit
(** Capture only if [dur_us >= threshold_us t]. *)

val recent : ?limit:int -> t -> Snapshot.slow_op list
(** Up to [limit] (default 32) most recent captured entries across all
    workers, newest first. *)

val clear : t -> unit
